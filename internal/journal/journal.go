// Package journal is the fleet's crash-safe operation log. Aging state
// is history: a die's threshold shift is the integral of every stress
// and rejuvenation phase it ever saw, and none of it is recoverable if
// the process dies. Because every simulation in this repository is
// deterministic given its parameters, the full chip state never needs
// to be serialized — it is enough to persist the *operations* (create,
// stress, rejuvenate, delete, and the sensor reads, which perturb the
// die) and replay them on startup.
//
// The on-disk layout is two files in the data directory:
//
//	snapshot.json  compacted records, rewritten atomically (tmp+rename)
//	journal.log    one record per line, appended and fsync'd per commit
//
// Each line is the record's JSON followed by a tab and a CRC32
// checksum of the JSON bytes (a raw tab can never appear inside a
// single-line JSON encoding, so the suffix is unambiguous). Lines
// written by older versions carry no checksum and are still accepted.
// The checksum turns silent bit rot into a detected corruption: by
// default a damaged mid-log record refuses startup, and with
// Options.Repair the file is backed up, truncated at the first bad
// record, and the dropped sequence numbers are reported.
//
// Appends are group-committed: each record is written under the lock,
// but concurrent appends share a single fsync — the first appender to
// reach the sync gate flushes every record staged so far, so tail
// latency under load is one fsync per batch instead of one per op. An
// append returns only after its record is provably durable, so an
// acknowledged operation survives a hard stop. A truncated final
// record (torn write at crash) is tolerated on open: replay stops at
// the last complete record and the tail is trimmed. Records carry
// sequence numbers so a crash between writing a snapshot and
// truncating the log never double-applies an operation.
//
// Compaction prunes the history of deleted chips (their records can
// never matter again) and folds the log into the snapshot. It runs on
// open and — off the append hot path — in a supervised background
// goroutine after every CompactEvery durable appends. The data
// directory itself is fsync'd after the snapshot rename and on log
// creation, so the rename survives power loss.
package journal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"selfheal/internal/obs"
)

// Op enumerates the journaled operations.
type Op string

// The journaled fleet operations. Measure and odometer reads are
// journaled too: reading a sensor ages the die (sampling overhead) and
// consumes noise draws, so a replay that skipped reads would land on a
// different state than the fleet had at the crash.
const (
	OpCreate     Op = "create"
	OpStress     Op = "stress"
	OpRejuvenate Op = "rejuvenate"
	OpDelete     Op = "delete"
	OpMeasure    Op = "measure"
	OpOdometer   Op = "odometer"
)

// The journaled guard operations (see internal/guard). Quarantine is
// part of a chip's durable lifecycle — a quarantined chip must refuse
// mutations across a crash until the guard releases it — so the
// transitions are journaled like any other fleet op. They are not reads
// (pruneTrailingReads must keep them) and compaction folds them like
// ordinary per-chip records: a delete prunes them with the chip.
const (
	OpQuarantine Op = "quarantine"
	OpRelease    Op = "release"
)

// The journaled engine operations (see internal/engine). The engine's
// aging state is deterministic given its operation history, so — like
// the fleet — it persists operations, not state: chip registrations
// and their later condition/schedule changes, and one coalesced epoch
// record per flush window that advances simulation time on replay.
//
// OpEngineEpoch is the one global (ID-less) record kind in the log: it
// applies to the whole engine, so chip-level pruning never touches it.
// The engine coalesces epochs *before* committing (one record carries
// an Epochs count); the journal must never merge adjacent epoch
// records itself — a merged record would keep only one of the original
// sequence numbers, and the seq-set overlap check in Open would then
// re-absorb the others from a stale log after a crash, double-aging
// the fleet.
const (
	OpEngineReg      Op = "engine_reg"      // chip joins the engine
	OpEngineRemove   Op = "engine_remove"   // engine-native chip leaves
	OpEngineSet      Op = "engine_set"      // condition change (phase/temp/vdd/duty)
	OpEngineSchedule Op = "engine_schedule" // circadian schedule change
	OpEngineEpoch    Op = "engine_epoch"    // global: Epochs ticks of Hours each
)

// IsEngineOp reports whether op belongs to the engine subsystem. The
// fleet replay skips these; the engine replay consumes them (plus the
// fleet's create/delete records, which double as engine membership).
func IsEngineOp(op Op) bool {
	switch op {
	case OpEngineReg, OpEngineRemove, OpEngineSet, OpEngineSchedule, OpEngineEpoch:
		return true
	}
	return false
}

// Record is one journaled operation. Create records carry Seed and
// Kind; stress/rejuvenate records carry the full phase parameters —
// including SampleHours, because sampling wakes the sensor and both
// ages the die and consumes noise draws, so replay must re-run the
// phase with identical settings to land on the identical state.
type Record struct {
	Seq         uint64  `json:"seq"`
	Op          Op      `json:"op"`
	ID          string  `json:"id"`
	Seed        uint64  `json:"seed,omitempty"`
	Kind        string  `json:"kind,omitempty"`
	TempC       float64 `json:"temp_c,omitempty"`
	Vdd         float64 `json:"vdd,omitempty"`
	AC          bool    `json:"ac,omitempty"`
	Hours       float64 `json:"hours,omitempty"`
	SampleHours float64 `json:"sample_hours,omitempty"`

	// Engine fields (see the OpEngine* ops). Reg/set records reuse
	// TempC and Vdd for the active condition and add Duty and Phase;
	// epoch records carry Epochs (tick count) with Hours as the
	// per-epoch simulated duration; schedule records carry the
	// circadian stress/sleep epoch counts and the sleep condition.
	Duty         float64 `json:"duty,omitempty"`
	Phase        string  `json:"phase,omitempty"`
	Epochs       uint64  `json:"epochs,omitempty"`
	StressEpochs uint64  `json:"stress_epochs,omitempty"`
	SleepEpochs  uint64  `json:"sleep_epochs,omitempty"`
	SleepTempC   float64 `json:"sleep_temp_c,omitempty"`
	SleepVdd     float64 `json:"sleep_vdd,omitempty"`

	// Trace is the id of the distributed trace that caused this record
	// (set by Append from the request context). Purely observability:
	// replay ignores it, but the replication stream and a follower's
	// journal both preserve it, so a mutation can be traced from client
	// through forward, owner and replica. Old logs without the field
	// decode with Trace == "".
	Trace string `json:"trace,omitempty"`
}

// Hook intercepts the encoded bytes of a record on their way to the
// log file — the fault-injection seam (op is the Record.Op as a plain
// string so injectors need not import this package). The bytes are the
// full on-disk line: JSON payload, tab, CRC32 suffix, newline. It may
// delay, return an error (nothing gets written), return a short prefix
// alongside an error (a torn write: the prefix hits the disk, then the
// append fails and the journal repairs itself by truncating back), or
// return silently corrupted bytes with no error — which the checksum
// catches on the next open.
type Hook func(op string, encoded []byte) ([]byte, error)

// Options tunes a journal; the zero value is production defaults.
type Options struct {
	// CompactEvery folds the log into the snapshot after this many
	// appends (default 4096; negative disables size-triggered runs).
	CompactEvery int
	// Hook, when set, intercepts every record write (fault injection).
	Hook Hook
	// SyncHook, when set, runs before every fsync of the log file and
	// may return an error to simulate fsync failure (ENOSPC/EIO).
	SyncHook func() error
	// Repair enables salvage on open: a file with a corrupt mid-log
	// record is backed up, truncated at the first bad record, and the
	// dropped records are reported via Repairs. Without it, corruption
	// refuses to open (a torn *final* log record is always tolerated —
	// that is the signature of a crash mid-append, not of bit rot).
	Repair bool
}

// Stats is a snapshot of the journal's counters, exported under the
// service's /metrics.
type Stats struct {
	Appends      uint64        // records durably appended since open
	Compactions  uint64        // snapshot rewrites since open
	Records      int           // live records (replay length)
	LastSeq      uint64        // sequence number of the newest durable record
	FsyncCount   uint64        // fsyncs issued
	FsyncTotal   time.Duration // summed fsync latency
	FsyncMax     time.Duration // slowest single fsync
	SyncBatches  uint64        // group commits (appends sharing one fsync)
	BatchMax     int           // largest number of appends in one group commit
	CompactError string        // last background-compaction failure, "" when healthy
}

// RepairReport describes one salvage performed by Open with
// Options.Repair: which file was damaged, where it was backed up,
// where it was truncated, and exactly which records were dropped.
type RepairReport struct {
	File           string   // the damaged file
	Backup         string   // full pre-truncation copy
	TruncatedAt    int64    // byte offset the file was cut at
	Line           int      // 1-based line number of the first bad record
	Reason         string   // why that record failed to decode
	DroppedRecords int      // lines dropped (the bad one and everything after)
	DroppedSeqs    []uint64 // seqs of still-parseable records past the corruption
}

// pendingAppend is one staged record awaiting its group fsync.
type pendingAppend struct {
	rec  Record
	done chan error // buffered; receives the group commit's verdict
}

// Journal is the append-only operation log. All methods are safe for
// concurrent use; record writes serialize internally (which also fixes
// the on-disk order — callers append while holding the per-chip lock,
// so the disk order always matches the application order per chip),
// while the fsync is shared across concurrent appends.
type Journal struct {
	dir  string
	opts Options

	mu         sync.Mutex
	f          *os.File
	size       int64 // bytes of complete records written to journal.log
	synced     int64 // prefix of size proven durable by fsync
	failed     error // set when a write could not be repaired; appends refuse
	pending    []*pendingAppend
	committing bool // a drained batch's fsync is in flight

	recs       []Record // durable live (compacted) history, snapshot source
	lastSeq    uint64   // newest assigned sequence number (staged included)
	durableSeq uint64   // newest fsync'd sequence number

	// onCommit, when set, observes every durably committed batch in
	// commit order (the replication primary's streaming seam).
	onCommit func(batch []Record)

	sinceCompact int
	appends      uint64
	compactions  uint64
	fsyncCount   uint64
	fsyncTotal   time.Duration
	fsyncMax     time.Duration
	syncBatches  uint64
	batchMax     int
	compactErr   error

	repairs []RepairReport

	// groupMu is the commit gate: the appender holding it fsyncs every
	// record staged so far and resolves their done channels.
	groupMu sync.Mutex

	compactc  chan struct{}
	closedc   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

const (
	snapshotName = "snapshot.json"
	logName      = "journal.log"
	// maxLine bounds one record line; anything longer is corruption.
	maxLine = 1 << 20
)

// Open creates dir if needed, loads the snapshot and the log (trimming
// a torn final record; salvaging deeper corruption when opts.Repair is
// set), compacts the pair, fsyncs the directory, and starts the
// background compaction supervisor. Call Records for the replay list.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts}

	snap, err := j.readOrSalvage(filepath.Join(dir, snapshotName), false)
	if err != nil {
		return nil, err
	}
	logRecs, err := j.readOrSalvage(filepath.Join(dir, logName), true)
	if err != nil {
		return nil, err
	}
	snapSeqs := make(map[uint64]struct{}, len(snap))
	for _, rec := range snap {
		snapSeqs[rec.Seq] = struct{}{}
		j.absorb(rec)
	}
	for _, rec := range logRecs {
		// Skip log records already folded into the snapshot (a crash
		// between snapshot rename and log truncation leaves overlap).
		if _, folded := snapSeqs[rec.Seq]; folded {
			continue
		}
		j.absorb(rec)
	}

	j.pruneTrailingReads()
	j.durableSeq = j.lastSeq

	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	// Persist the log file's creation (and any salvage truncation)
	// before acknowledging anything written into it.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync dir: %w", err)
	}
	// Fold everything into the snapshot so the next open replays one
	// clean file, and so the torn tail (if any) is physically gone.
	if err := j.compactLocked(); err != nil {
		f.Close()
		return nil, err
	}
	j.compactc = make(chan struct{}, 1)
	j.closedc = make(chan struct{})
	j.wg.Add(1)
	go j.compactLoop()
	return j, nil
}

// Repairs returns the salvage reports from Open (empty unless
// Options.Repair was set and corruption was found).
func (j *Journal) Repairs() []RepairReport { return j.repairs }

// isRead reports whether op is a sensor read. Reads are journaled —
// sampling perturbs the die, so later mutations build on the post-read
// state — but a read nothing built on yet is prunable (see below).
func (op Op) isRead() bool { return op == OpMeasure || op == OpOdometer }

// pruneTrailingReads drops, per chip, the sensor reads with no later
// mutating record. Replaying them would shift the post-restart reading
// to the *next* noise draw; dropping them makes the first post-restart
// read reproduce the last pre-crash reading exactly. Open compacts
// right after, so the pruned view is what the next open replays —
// without that persistence a later mutation would journal on top of
// records the live state never included.
func (j *Journal) pruneTrailingReads() {
	lastMut := make(map[string]uint64)
	for _, r := range j.recs {
		if !r.Op.isRead() {
			lastMut[r.ID] = r.Seq
		}
	}
	kept := j.recs[:0]
	for _, r := range j.recs {
		if !r.Op.isRead() || r.Seq < lastMut[r.ID] {
			kept = append(kept, r)
		}
	}
	j.recs = kept
}

// absorb applies one record to the in-memory live history: deletes
// (and engine removals — an engine-native chip's records are all
// engine records) prune every earlier record for that chip, since
// their replay could never be observed again; everything else
// accumulates. Epoch records carry no ID, so chip pruning never
// touches them.
func (j *Journal) absorb(rec Record) {
	if rec.Seq > j.lastSeq {
		j.lastSeq = rec.Seq
	}
	if (rec.Op == OpDelete || rec.Op == OpEngineRemove) && rec.ID != "" {
		kept := j.recs[:0]
		for _, r := range j.recs {
			if r.ID != rec.ID {
				kept = append(kept, r)
			}
		}
		j.recs = kept
		return
	}
	j.recs = append(j.recs, rec)
}

// encodeLine renders one on-disk line: JSON payload, tab, CRC32 of the
// payload as 8 hex digits, newline.
func encodeLine(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	line := make([]byte, 0, len(payload)+12)
	line = append(line, payload...)
	line = fmt.Appendf(line, "\tc%08x", crc32.ChecksumIEEE(payload))
	return append(line, '\n'), nil
}

// parseLine decodes one journal line (without its newline). Lines
// written by this version carry a trailing "\tc<crc32 hex>" suffix,
// verified against the JSON payload; lines from older logs are bare
// JSON and are accepted without verification.
func parseLine(line []byte) (Record, error) {
	payload := line
	if i := bytes.LastIndexByte(line, '\t'); i >= 0 {
		sum := line[i+1:]
		payload = line[:i]
		if len(sum) != 9 || sum[0] != 'c' {
			return Record{}, fmt.Errorf("malformed checksum suffix %q", sum)
		}
		want, err := strconv.ParseUint(string(sum[1:]), 16, 32)
		if err != nil {
			return Record{}, fmt.Errorf("malformed checksum %q", sum)
		}
		if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
			return Record{}, fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", uint32(want), got)
		}
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("bad record: %w", err)
	}
	if rec.Op == "" {
		return Record{}, errors.New("record has no op")
	}
	return rec, nil
}

// corruption describes the first undecodable record found in a file.
type corruption struct {
	offset       int64 // byte offset of the bad line's start
	line         int   // 1-based line number of the bad line
	reason       error
	droppedLines int      // the bad line plus everything after it
	droppedSeqs  []uint64 // seqs of still-parseable records past the corruption
}

// readRecords parses one record per line, returning the records before
// the first undecodable line and — when one exists — a description of
// the corruption. With tolerateTail, a single bad *final* line is
// treated as a torn crash write and silently dropped. The error return
// is reserved for I/O failures.
func readRecords(path string, tolerateTail bool) ([]Record, *corruption, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	var (
		recs   []Record
		corr   *corruption
		offset int64
		lineNo int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		start := offset
		offset += int64(len(line)) + 1
		if len(line) == 0 {
			continue
		}
		if corr != nil {
			// Past the corruption everything is dropped; keep parsing
			// best-effort so the salvage report can name the seqs.
			corr.droppedLines++
			if rec, perr := parseLine(line); perr == nil {
				corr.droppedSeqs = append(corr.droppedSeqs, rec.Seq)
			}
			continue
		}
		rec, perr := parseLine(line)
		if perr != nil {
			corr = &corruption{offset: start, line: lineNo, reason: perr, droppedLines: 1}
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		if !errors.Is(err, bufio.ErrTooLong) {
			return nil, nil, fmt.Errorf("journal: %s: %w", path, err)
		}
		// An oversized line is corruption; scanning cannot continue, so
		// the dropped-record details past this point are unknown.
		if corr == nil {
			corr = &corruption{
				offset: offset, line: lineNo + 1, droppedLines: 1,
				reason: fmt.Errorf("record exceeds %d bytes", maxLine),
			}
		}
		return recs, corr, nil
	}
	// A lone bad line at the very end of the log is the signature of a
	// torn append at crash time, not of bit rot: drop it silently.
	if corr != nil && corr.droppedLines == 1 && tolerateTail {
		corr = nil
	}
	return recs, corr, nil
}

// readOrSalvage loads one file. Corruption either refuses the open
// (default — the operator must opt in to dropping records) or, with
// Options.Repair, backs the file up, truncates it at the first bad
// record, and records a RepairReport.
func (j *Journal) readOrSalvage(path string, tolerateTail bool) ([]Record, error) {
	recs, corr, err := readRecords(path, tolerateTail)
	if err != nil {
		return nil, err
	}
	if corr == nil {
		return recs, nil
	}
	if !j.opts.Repair {
		return nil, fmt.Errorf(
			"journal: %s: line %d: %v; refusing to start (enable repair — selfheal-serve -repair — to back up the file, truncate at the corruption, and drop %d record(s))",
			path, corr.line, corr.reason, corr.droppedLines)
	}
	rep, err := salvage(path, corr)
	if err != nil {
		return nil, err
	}
	j.repairs = append(j.repairs, rep)
	return recs, nil
}

// salvage backs path up to the first free "<path>.corrupt.N", truncates
// the original at the corruption, and fsyncs both file and directory.
func salvage(path string, corr *corruption) (RepairReport, error) {
	backup, err := backupFile(path)
	if err != nil {
		return RepairReport{}, fmt.Errorf("journal: salvage %s: %w", path, err)
	}
	if err := os.Truncate(path, corr.offset); err != nil {
		return RepairReport{}, fmt.Errorf("journal: salvage %s: truncate: %w", path, err)
	}
	if err := syncFilePath(path); err != nil {
		return RepairReport{}, fmt.Errorf("journal: salvage %s: %w", path, err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return RepairReport{}, fmt.Errorf("journal: salvage %s: sync dir: %w", path, err)
	}
	return RepairReport{
		File:           path,
		Backup:         backup,
		TruncatedAt:    corr.offset,
		Line:           corr.line,
		Reason:         corr.reason.Error(),
		DroppedRecords: corr.droppedLines,
		DroppedSeqs:    corr.droppedSeqs,
	}, nil
}

// backupFile copies path to the first unused "<path>.corrupt.N" and
// fsyncs the copy, so the damaged original survives for forensics.
func backupFile(path string) (string, error) {
	src, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer src.Close()
	for n := 0; ; n++ {
		cand := fmt.Sprintf("%s.corrupt.%d", path, n)
		dst, err := os.OpenFile(cand, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue
		}
		if err != nil {
			return "", err
		}
		if _, err := io.Copy(dst, src); err != nil {
			dst.Close()
			return "", err
		}
		if err := dst.Sync(); err != nil {
			dst.Close()
			return "", err
		}
		return cand, dst.Close()
	}
}

// Records returns a copy of the durable live (compacted) history in
// sequence order — the replay list that reconstructs the fleet.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.recs))
	copy(out, j.recs)
	return out
}

// Append assigns the next sequence number, writes the record to the
// log, and waits for a group commit to make it durable. It returns
// only after the record is fsync'd — or with an error after repairing
// any partial write, so the log never accumulates garbage between
// records. Concurrent appends share one fsync. A journal whose repair
// failed refuses further appends rather than corrupt the history.
//
// When ctx carries a trace, Append records a journal.stage span (the
// serialized line write) and a journal.commit span showing whether
// this appender led the group commit or rode another leader's fsync.
func (j *Journal) Append(ctx context.Context, rec Record) error {
	if rec.Trace == "" {
		rec.Trace = obs.TraceIDFrom(ctx)
	}
	_, sp := obs.StartSpan(ctx, "journal.stage",
		obs.String("op", string(rec.Op)), obs.String("chip_id", rec.ID))
	p, err := j.stage(rec)
	sp.SetError(err)
	sp.End()
	if err != nil {
		return err
	}
	return j.awaitCommit(ctx, p)
}

// stage serializes the record write: it reserves the sequence number,
// runs the fault hook, writes the line at the log's tail, and — on a
// failed or torn write — truncates straight back to the last complete
// record so the next append starts on a clean boundary.
func (j *Journal) stage(rec Record) (*pendingAppend, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return nil, fmt.Errorf("journal: log is failed (%w); refusing append", j.failed)
	}
	rec.Seq = j.lastSeq + 1
	if err := j.writeLineLocked(rec); err != nil {
		return nil, err
	}
	j.lastSeq = rec.Seq
	p := &pendingAppend{rec: rec, done: make(chan error, 1)}
	j.pending = append(j.pending, p)
	return p, nil
}

// writeLineLocked encodes rec (whose Seq is already set), runs the
// fault hook, and writes the line at the log's tail, advancing size. On
// a failed or torn write it truncates back to the pre-write tail so the
// log never holds a partial record between complete ones. Callers hold
// mu.
func (j *Journal) writeLineLocked(rec Record) error {
	line, err := encodeLine(rec)
	if err != nil {
		return err
	}
	toWrite := line
	var hookErr error
	if j.opts.Hook != nil {
		toWrite, hookErr = j.opts.Hook(string(rec.Op), line)
	}
	if len(toWrite) > 0 {
		if _, werr := j.f.WriteAt(toWrite, j.size); werr != nil && hookErr == nil {
			hookErr = werr
		}
	}
	if hookErr != nil || len(toWrite) != len(line) {
		if terr := j.f.Truncate(j.size); terr != nil {
			j.failed = terr
			return fmt.Errorf("journal: append failed (%v) and repair failed: %w", hookErr, terr)
		}
		if hookErr == nil {
			hookErr = errors.New("journal: short write")
		}
		return fmt.Errorf("journal: append: %w", hookErr)
	}
	j.size += int64(len(line))
	return nil
}

// AppendReplica appends records that already carry sequence numbers —
// the replication follower's write path. The whole batch shares one
// group commit (one fsync), records whose seq is not past lastSeq are
// skipped (snapshot/tail overlap and retransmits are harmless), and the
// call returns only after the batch is durable. Unlike Append it never
// assigns sequence numbers: replicas must preserve the primary's
// numbering bit-for-bit so a promoted follower replays identically.
func (j *Journal) AppendReplica(ctx context.Context, recs []Record) error {
	j.mu.Lock()
	if j.failed != nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: log is failed (%w); refusing append", j.failed)
	}
	start, startSeq := j.size, j.lastSeq
	var staged []*pendingAppend
	fail := func(err error) error {
		// Unwind every line this batch wrote so nothing half-applied is
		// staged; pending from other appenders sits before start and is
		// untouched.
		if terr := j.f.Truncate(start); terr != nil {
			j.failed = terr
		}
		j.size, j.lastSeq = start, startSeq
		j.mu.Unlock()
		return err
	}
	for _, rec := range recs {
		if rec.Seq == 0 {
			return fail(errors.New("journal: replica record without sequence number"))
		}
		if rec.Seq <= j.lastSeq {
			continue
		}
		if err := j.writeLineLocked(rec); err != nil {
			return fail(err)
		}
		j.lastSeq = rec.Seq
		staged = append(staged, &pendingAppend{rec: rec, done: make(chan error, 1)})
	}
	j.pending = append(j.pending, staged...)
	j.mu.Unlock()
	if len(staged) == 0 {
		return nil // every record was a duplicate
	}
	// Waiting on the last record covers the whole batch: commitGroup
	// resolves a batch all-or-nothing.
	return j.awaitCommit(ctx, staged[len(staged)-1])
}

// ResetTo atomically replaces the journal's entire live history with
// recs — the replication follower's snapshot-resync path. The records
// must already carry the primary's sequence numbers; lastSeq is the
// primary's durable sequence cursor, which can sit past the highest
// record (deletes prune their chip's history *and* themselves), so the
// replica's numbering keeps tracking the primary's. The new history is
// compacted to disk before returning, so a crash right after ResetTo
// replays exactly recs. It refuses while appends are staged or a commit
// is in flight; the follower is normally the journal's only writer.
func (j *Journal) ResetTo(recs []Record, lastSeq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return fmt.Errorf("journal: log is failed (%w); refusing reset", j.failed)
	}
	if len(j.pending) > 0 || j.committing {
		return errors.New("journal: reset: appends in flight")
	}
	j.recs = append(j.recs[:0:0], recs...)
	j.lastSeq = lastSeq
	for _, rec := range recs {
		if rec.Seq > j.lastSeq {
			j.lastSeq = rec.Seq
		}
	}
	j.durableSeq = j.lastSeq
	return j.compactLocked()
}

// SetOnCommit registers fn to observe every durably committed batch.
// Batches arrive in commit order (the group-commit gate serializes
// them), after the batch is durable and absorbed but before the
// appenders' Append calls return — so a replication primary can enqueue
// the batch to followers before acknowledging. fn must not call back
// into the journal and must not block (it runs on the commit path).
func (j *Journal) SetOnCommit(fn func(batch []Record)) {
	j.mu.Lock()
	j.onCommit = fn
	j.mu.Unlock()
}

// awaitCommit resolves one staged append: either an earlier appender's
// group commit already covered it, or this appender becomes the leader
// and commits every record staged so far. The journal.commit span makes
// the group-commit roles visible: leader=true spans carry the batch
// size and fsync duration; leader=false spans measure only the wait.
func (j *Journal) awaitCommit(ctx context.Context, p *pendingAppend) error {
	_, sp := obs.StartSpan(ctx, "journal.commit")
	defer sp.End()
	select {
	case err := <-p.done:
		sp.Annotate(obs.Bool("leader", false))
		sp.SetError(err)
		return err
	default:
	}
	j.groupMu.Lock()
	select {
	case err := <-p.done: // the previous leader's group covered us
		j.groupMu.Unlock()
		sp.Annotate(obs.Bool("leader", false))
		sp.SetError(err)
		return err
	default:
	}
	n, fsync := j.commitGroup()
	j.groupMu.Unlock()
	sp.Annotate(obs.Bool("leader", true), obs.Int("batch_size", n), obs.Duration("fsync", fsync))
	// commitGroup drained the pending set we are in, so done is resolved.
	err := <-p.done
	sp.SetError(err)
	return err
}

// commitGroup fsyncs every staged record in one shot. On success the
// batch becomes durable and is absorbed into the live history; on
// failure the log is truncated back to the durable prefix — failing,
// alongside the batch, any append staged while the fsync was in
// flight, since its bytes sit past the truncation point. It reports
// the batch size and fsync duration for the leader's trace span.
func (j *Journal) commitGroup() (int, time.Duration) {
	j.mu.Lock()
	batch := j.pending
	j.pending = nil
	end := j.size
	if len(batch) == 0 {
		j.mu.Unlock()
		return 0, 0
	}
	// Block compaction until the batch is absorbed: its bytes live only
	// in the log, and compaction truncates the log.
	j.committing = true
	j.mu.Unlock()

	// The fsync runs outside mu so concurrent appenders keep staging
	// into the next batch while the disk works.
	start := time.Now()
	serr := j.doSync()
	elapsed := time.Since(start)

	j.mu.Lock()
	j.committing = false
	onCommit := j.onCommit
	j.fsyncCount++
	j.fsyncTotal += elapsed
	if elapsed > j.fsyncMax {
		j.fsyncMax = elapsed
	}
	if serr == nil {
		if end > j.synced {
			j.synced = end
		}
		j.syncBatches++
		if len(batch) > j.batchMax {
			j.batchMax = len(batch)
		}
		for _, p := range batch {
			j.absorb(p.rec)
			if p.rec.Seq > j.durableSeq {
				j.durableSeq = p.rec.Seq
			}
			j.appends++
			j.sinceCompact++
		}
		if j.opts.CompactEvery > 0 && j.sinceCompact >= j.opts.CompactEvery {
			select {
			case j.compactc <- struct{}{}:
			default:
			}
		}
	} else {
		serr = fmt.Errorf("journal: fsync: %w", serr)
		// The batch's bytes are written but not provably durable; trim
		// back so the on-disk and in-memory histories stay in
		// agreement. Records staged during the failed fsync sit past
		// the trim point, so they fail with the same verdict.
		if terr := j.f.Truncate(j.synced); terr != nil {
			j.failed = terr
		}
		j.size = j.synced
		j.lastSeq = j.durableSeq
		batch = append(batch, j.pending...)
		j.pending = nil
	}
	j.mu.Unlock()
	// The commit callback runs under the group-commit gate (the caller
	// holds groupMu), so a replication primary observes batches in
	// exactly the order they became durable — and before any appender in
	// the batch is acknowledged.
	if serr == nil && onCommit != nil {
		recs := make([]Record, len(batch))
		for i, p := range batch {
			recs[i] = p.rec
		}
		onCommit(recs)
	}
	for _, p := range batch {
		p.done <- serr
	}
	return len(batch), elapsed
}

// doSync runs the fault seam, then fsyncs the log file.
func (j *Journal) doSync() error {
	if j.opts.SyncHook != nil {
		if err := j.opts.SyncHook(); err != nil {
			return err
		}
	}
	return j.f.Sync()
}

// Probe checks whether the journal can write durably again — the
// recovery test the serve layer's degraded-mode supervisor polls. It
// re-attempts the truncate of a failed repair, then runs the fsync
// path (including the fault seam). A nil return means appends work.
func (j *Journal) Probe() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		if err := j.f.Truncate(j.synced); err != nil {
			return fmt.Errorf("journal: still failed: %w", err)
		}
		j.size = j.synced
		j.lastSeq = j.durableSeq
		j.failed = nil
	}
	start := time.Now()
	err := j.doSync()
	elapsed := time.Since(start)
	j.fsyncCount++
	j.fsyncTotal += elapsed
	if elapsed > j.fsyncMax {
		j.fsyncMax = elapsed
	}
	if err != nil {
		return fmt.Errorf("journal: probe fsync: %w", err)
	}
	return nil
}

// compactLoop is the background compaction supervisor: it owns every
// size-triggered snapshot rewrite, so a slow compaction never stalls
// an appender. Errors are retained (surfaced via Stats) and retried on
// the next trigger.
func (j *Journal) compactLoop() {
	defer j.wg.Done()
	for {
		select {
		case <-j.closedc:
			return
		case <-j.compactc:
		}
		j.mu.Lock()
		// Skip while appends are staged or a batch's fsync is in
		// flight: compaction truncates the log, and those records are
		// not in the snapshot yet. The next group commit re-triggers,
		// so nothing is lost.
		if j.failed == nil && len(j.pending) == 0 && !j.committing &&
			j.opts.CompactEvery > 0 && j.sinceCompact >= j.opts.CompactEvery {
			j.compactErr = j.compactLocked()
		}
		j.mu.Unlock()
	}
}

// Compact folds the log into the snapshot immediately.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.pending) > 0 || j.committing {
		return errors.New("journal: compact: appends in flight")
	}
	return j.compactLocked()
}

// compactLocked writes the live records to snapshot.json.tmp, fsyncs,
// renames over the snapshot, fsyncs the directory (so the rename
// itself survives power loss), then truncates the log. A crash at any
// point is safe: the rename is atomic and replay deduplicates by
// sequence number. Callers hold mu and have no staged-unsynced
// records.
func (j *Journal) compactLocked() error {
	tmpPath := filepath.Join(j.dir, snapshotName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, rec := range j.recs {
		line, err := encodeLine(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(j.dir, snapshotName)); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		return fmt.Errorf("journal: compact: sync dir: %w", err)
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: compact: truncate log: %w", err)
	}
	j.size = 0
	j.synced = 0
	j.sinceCompact = 0
	j.compactions++
	return nil
}

// syncDir fsyncs a directory, persisting renames and file creations
// inside it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncFilePath fsyncs the file at path.
func syncFilePath(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Stats{
		Appends:     j.appends,
		Compactions: j.compactions,
		Records:     len(j.recs),
		LastSeq:     j.durableSeq,
		FsyncCount:  j.fsyncCount,
		FsyncTotal:  j.fsyncTotal,
		FsyncMax:    j.fsyncMax,
		SyncBatches: j.syncBatches,
		BatchMax:    j.batchMax,
	}
	if j.compactErr != nil {
		st.CompactError = j.compactErr.Error()
	}
	return st
}

// Close stops the compaction supervisor and releases the log file. A
// hard stop without Close loses nothing: every acknowledged append was
// already fsync'd.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() { close(j.closedc) })
	j.wg.Wait()
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
