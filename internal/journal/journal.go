// Package journal is the fleet's crash-safe operation log. Aging state
// is history: a die's threshold shift is the integral of every stress
// and rejuvenation phase it ever saw, and none of it is recoverable if
// the process dies. Because every simulation in this repository is
// deterministic given its parameters, the full chip state never needs
// to be serialized — it is enough to persist the *operations* (create,
// stress, rejuvenate, delete, and the sensor reads, which perturb the
// die) and replay them on startup.
//
// The on-disk layout is two files in the data directory:
//
//	snapshot.json  compacted records, rewritten atomically (tmp+rename)
//	journal.log    one JSON record per line, appended and fsync'd per op
//
// Appends are fsync'd before the caller's HTTP response commits, so an
// acknowledged operation survives a hard stop. A truncated final record
// (torn write at crash) is tolerated on open: replay stops at the last
// complete record and the tail is trimmed. Records carry sequence
// numbers so a crash between writing a snapshot and truncating the log
// never double-applies an operation.
//
// Compaction prunes the history of deleted chips (their records can
// never matter again) and folds the log into the snapshot; it runs on
// open and every CompactEvery appends.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Op enumerates the journaled operations.
type Op string

// The journaled fleet operations. Measure and odometer reads are
// journaled too: reading a sensor ages the die (sampling overhead) and
// consumes noise draws, so a replay that skipped reads would land on a
// different state than the fleet had at the crash.
const (
	OpCreate     Op = "create"
	OpStress     Op = "stress"
	OpRejuvenate Op = "rejuvenate"
	OpDelete     Op = "delete"
	OpMeasure    Op = "measure"
	OpOdometer   Op = "odometer"
)

// Record is one journaled operation. Create records carry Seed and
// Kind; stress/rejuvenate records carry the full phase parameters —
// including SampleHours, because sampling wakes the sensor and both
// ages the die and consumes noise draws, so replay must re-run the
// phase with identical settings to land on the identical state.
type Record struct {
	Seq         uint64  `json:"seq"`
	Op          Op      `json:"op"`
	ID          string  `json:"id"`
	Seed        uint64  `json:"seed,omitempty"`
	Kind        string  `json:"kind,omitempty"`
	TempC       float64 `json:"temp_c,omitempty"`
	Vdd         float64 `json:"vdd,omitempty"`
	AC          bool    `json:"ac,omitempty"`
	Hours       float64 `json:"hours,omitempty"`
	SampleHours float64 `json:"sample_hours,omitempty"`
}

// Hook intercepts the encoded bytes of a record on their way to the
// log file — the fault-injection seam (op is the Record.Op as a plain
// string so injectors need not import this package). It may delay,
// return an error (nothing gets written), or return a short prefix
// alongside an error (a torn write: the prefix hits the disk, then the
// append fails and the journal repairs itself by truncating back).
type Hook func(op string, encoded []byte) ([]byte, error)

// Options tunes a journal; the zero value is production defaults.
type Options struct {
	// CompactEvery folds the log into the snapshot after this many
	// appends (default 4096; negative disables size-triggered runs).
	CompactEvery int
	// Hook, when set, intercepts every record write (fault injection).
	Hook Hook
}

// Stats is a snapshot of the journal's counters, exported under the
// service's /metrics.
type Stats struct {
	Appends     uint64        // records durably appended since open
	Compactions uint64        // snapshot rewrites since open
	Records     int           // live records (replay length)
	LastSeq     uint64        // sequence number of the newest record
	FsyncCount  uint64        // fsyncs issued
	FsyncTotal  time.Duration // summed fsync latency
	FsyncMax    time.Duration // slowest single fsync
}

// Journal is the append-only operation log. All methods are safe for
// concurrent use; Append serializes internally, which also fixes the
// on-disk order (callers append while holding the per-chip lock, so
// the disk order always matches the application order per chip).
type Journal struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	size   int64 // bytes of complete records in journal.log
	failed error // set when a write could not be repaired; appends refuse

	recs         []Record // live (compacted) history, snapshot source
	lastSeq      uint64
	sinceCompact int

	appends     uint64
	compactions uint64
	fsyncCount  uint64
	fsyncTotal  time.Duration
	fsyncMax    time.Duration
}

const (
	snapshotName = "snapshot.json"
	logName      = "journal.log"
)

// Open creates dir if needed, loads the snapshot and the log (trimming
// a torn final record), compacts the pair, and returns a journal ready
// for appends. Call Records for the replay list.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts}

	snap, err := readRecords(filepath.Join(dir, snapshotName), false)
	if err != nil {
		return nil, err
	}
	logRecs, err := readRecords(filepath.Join(dir, logName), true)
	if err != nil {
		return nil, err
	}
	snapSeqs := make(map[uint64]struct{}, len(snap))
	for _, rec := range snap {
		snapSeqs[rec.Seq] = struct{}{}
		j.absorb(rec)
	}
	for _, rec := range logRecs {
		// Skip log records already folded into the snapshot (a crash
		// between snapshot rename and log truncation leaves overlap).
		if _, folded := snapSeqs[rec.Seq]; folded {
			continue
		}
		j.absorb(rec)
	}

	j.pruneTrailingReads()

	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	// Fold everything into the snapshot so the next open replays one
	// clean file, and so the torn tail (if any) is physically gone.
	if err := j.compactLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// isRead reports whether op is a sensor read. Reads are journaled —
// sampling perturbs the die, so later mutations build on the post-read
// state — but a read nothing built on yet is prunable (see below).
func (op Op) isRead() bool { return op == OpMeasure || op == OpOdometer }

// pruneTrailingReads drops, per chip, the sensor reads with no later
// mutating record. Replaying them would shift the post-restart reading
// to the *next* noise draw; dropping them makes the first post-restart
// read reproduce the last pre-crash reading exactly. Open compacts
// right after, so the pruned view is what the next open replays —
// without that persistence a later mutation would journal on top of
// records the live state never included.
func (j *Journal) pruneTrailingReads() {
	lastMut := make(map[string]uint64)
	for _, r := range j.recs {
		if !r.Op.isRead() {
			lastMut[r.ID] = r.Seq
		}
	}
	kept := j.recs[:0]
	for _, r := range j.recs {
		if !r.Op.isRead() || r.Seq < lastMut[r.ID] {
			kept = append(kept, r)
		}
	}
	j.recs = kept
}

// absorb applies one record to the in-memory live history: deletes
// prune every earlier record for that chip (their replay could never
// be observed again), everything else accumulates.
func (j *Journal) absorb(rec Record) {
	if rec.Seq > j.lastSeq {
		j.lastSeq = rec.Seq
	}
	if rec.Op == OpDelete {
		kept := j.recs[:0]
		for _, r := range j.recs {
			if r.ID != rec.ID {
				kept = append(kept, r)
			}
		}
		j.recs = kept
		return
	}
	j.recs = append(j.recs, rec)
}

// readRecords parses one JSON record per line. With tolerateTail, a
// final line that does not parse is treated as a torn write and
// dropped; a bad line *followed by good ones* is real corruption and
// an error either way.
func readRecords(path string, tolerateTail bool) ([]Record, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	var recs []Record
	var badLine string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if badLine != "" {
			return nil, fmt.Errorf("journal: %s: corrupt record %q is not the final line", path, badLine)
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Op == "" {
			badLine = string(line)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	if badLine != "" && !tolerateTail {
		return nil, fmt.Errorf("journal: %s: corrupt record %q", path, badLine)
	}
	return recs, nil
}

// Records returns a copy of the live (compacted) history in sequence
// order — the replay list that reconstructs the fleet.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.recs))
	copy(out, j.recs)
	return out
}

// Append assigns the next sequence number, writes the record to the
// log and fsyncs it. It returns only after the record is durable — or
// with an error after repairing any partial write, so the log never
// accumulates garbage between records. A journal whose repair failed
// refuses further appends rather than corrupt the history.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return fmt.Errorf("journal: log is failed (%w); refusing append", j.failed)
	}
	rec.Seq = j.lastSeq + 1
	encoded, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	encoded = append(encoded, '\n')

	toWrite := encoded
	var hookErr error
	if j.opts.Hook != nil {
		toWrite, hookErr = j.opts.Hook(string(rec.Op), encoded)
	}
	if len(toWrite) > 0 {
		if _, werr := j.f.WriteAt(toWrite, j.size); werr != nil && hookErr == nil {
			hookErr = werr
		}
	}
	if hookErr != nil || len(toWrite) != len(encoded) {
		// Partial or failed write: truncate back to the last complete
		// record so the next append starts on a clean boundary.
		if terr := j.f.Truncate(j.size); terr != nil {
			j.failed = terr
			return fmt.Errorf("journal: append failed (%v) and repair failed: %w", hookErr, terr)
		}
		if hookErr == nil {
			hookErr = errors.New("journal: short write")
		}
		return fmt.Errorf("journal: append: %w", hookErr)
	}
	if err := j.fsync(); err != nil {
		// The bytes are written but not provably durable; trim them so
		// the in-memory and on-disk histories stay in agreement.
		if terr := j.f.Truncate(j.size); terr != nil {
			j.failed = terr
		}
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.size += int64(len(encoded))
	j.lastSeq = rec.Seq
	j.absorb(rec)
	j.appends++
	j.sinceCompact++
	if j.opts.CompactEvery > 0 && j.sinceCompact >= j.opts.CompactEvery {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (j *Journal) fsync() error {
	start := time.Now()
	err := j.f.Sync()
	elapsed := time.Since(start)
	j.fsyncCount++
	j.fsyncTotal += elapsed
	if elapsed > j.fsyncMax {
		j.fsyncMax = elapsed
	}
	return err
}

// Compact folds the log into the snapshot immediately.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

// compactLocked writes the live records to snapshot.json.tmp, fsyncs,
// renames over the snapshot, then truncates the log. A crash at any
// point is safe: the rename is atomic and replay deduplicates by
// sequence number.
func (j *Journal) compactLocked() error {
	tmpPath := filepath.Join(j.dir, snapshotName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, rec := range j.recs {
		b, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: encode: %w", err)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(j.dir, snapshotName)); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	syncDir(j.dir) // best effort: persist the rename itself
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: compact: truncate log: %w", err)
	}
	j.size = 0
	j.sinceCompact = 0
	j.compactions++
	return nil
}

func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Appends:     j.appends,
		Compactions: j.compactions,
		Records:     len(j.recs),
		LastSeq:     j.lastSeq,
		FsyncCount:  j.fsyncCount,
		FsyncTotal:  j.fsyncTotal,
		FsyncMax:    j.fsyncMax,
	}
}

// Close releases the log file. A hard stop without Close loses
// nothing: every acknowledged append was already fsync'd.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
