package journal

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestAppendReplicaPreservesSeqs(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	ctx := context.Background()
	batch := []Record{
		{Seq: 7, Op: OpCreate, ID: "x", Seed: 1, Kind: "lut"},
		{Seq: 8, Op: OpStress, ID: "x", Hours: 2},
		{Seq: 12, Op: OpCreate, ID: "y", Seed: 2, Kind: "lut"},
	}
	if err := j.AppendReplica(ctx, batch); err != nil {
		t.Fatalf("AppendReplica: %v", err)
	}
	recs := j.Records()
	if len(recs) != 3 {
		t.Fatalf("records: %+v", recs)
	}
	for i, want := range []uint64{7, 8, 12} {
		if recs[i].Seq != want {
			t.Fatalf("seq[%d] = %d, want %d (replica must preserve primary numbering)", i, recs[i].Seq, want)
		}
	}
	if st := j.Stats(); st.LastSeq != 12 {
		t.Fatalf("LastSeq = %d, want 12", st.LastSeq)
	}

	// Duplicates and stale seqs are skipped; new ones past lastSeq apply.
	if err := j.AppendReplica(ctx, []Record{
		{Seq: 8, Op: OpStress, ID: "x", Hours: 99}, // dup — must not double-apply
		{Seq: 13, Op: OpStress, ID: "y", Hours: 1},
	}); err != nil {
		t.Fatalf("AppendReplica dup batch: %v", err)
	}
	recs = j.Records()
	if len(recs) != 4 || recs[3].Seq != 13 {
		t.Fatalf("after dup batch: %+v", recs)
	}
	// A batch of only duplicates is a durable no-op.
	if err := j.AppendReplica(ctx, []Record{{Seq: 5, Op: OpStress, ID: "x"}}); err != nil {
		t.Fatalf("all-dup batch: %v", err)
	}
	if err := j.AppendReplica(ctx, []Record{{Op: OpStress, ID: "x"}}); err == nil {
		t.Fatal("replica record without seq accepted")
	}

	// Normal appends continue the replicated numbering.
	if err := j.Append(ctx, Record{Op: OpStress, ID: "x", Hours: 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	recs = j.Records()
	if got := recs[len(recs)-1].Seq; got != 14 {
		t.Fatalf("post-replica Append seq = %d, want 14", got)
	}
}

func TestAppendReplicaSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{})
	if err := j.AppendReplica(context.Background(), []Record{
		{Seq: 3, Op: OpCreate, ID: "x", Seed: 1, Kind: "lut"},
		{Seq: 4, Op: OpStress, ID: "x", Hours: 2},
	}); err != nil {
		t.Fatalf("AppendReplica: %v", err)
	}
	j.Close()
	j2 := openT(t, dir, Options{})
	recs := j2.Records()
	if len(recs) != 2 || recs[0].Seq != 3 || recs[1].Seq != 4 {
		t.Fatalf("after reopen: %+v", recs)
	}
}

func TestResetTo(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{})
	ctx := context.Background()
	// Local garbage that the reset must wipe.
	for i := 0; i < 5; i++ {
		if err := j.Append(ctx, Record{Op: OpCreate, ID: "stale", Seed: uint64(i), Kind: "lut"}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	snap := []Record{
		{Seq: 100, Op: OpCreate, ID: "a", Seed: 9, Kind: "lut"},
		{Seq: 101, Op: OpStress, ID: "a", Hours: 3},
	}
	if err := j.ResetTo(snap, 105); err != nil {
		t.Fatalf("ResetTo: %v", err)
	}
	recs := j.Records()
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].Seq != 101 {
		t.Fatalf("after reset: %+v", recs)
	}
	// The reset adopts the primary's cursor (105), which sits past the
	// highest snapshot record — trailing deletes prune themselves.
	if st := j.Stats(); st.LastSeq != 105 {
		t.Fatalf("LastSeq = %d, want 105", st.LastSeq)
	}
	// Tail continues from the primary's numbering and survives reopen.
	if err := j.AppendReplica(ctx, []Record{{Seq: 106, Op: OpStress, ID: "a", Hours: 1}}); err != nil {
		t.Fatalf("AppendReplica: %v", err)
	}
	j.Close()
	j2 := openT(t, dir, Options{})
	recs = j2.Records()
	if len(recs) != 3 || recs[2].Seq != 106 {
		t.Fatalf("after reopen: %+v", recs)
	}
}

func TestOnCommitOrderAndCoverage(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	var (
		mu   sync.Mutex
		seen []uint64
	)
	j.SetOnCommit(func(batch []Record) {
		mu.Lock()
		for _, r := range batch {
			seen = append(seen, r.Seq)
		}
		mu.Unlock()
	})
	ctx := context.Background()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append(ctx, Record{Op: OpCreate, ID: "c", Seed: uint64(i), Kind: "lut"}); err != nil {
				t.Errorf("Append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("onCommit observed %d records, want %d", len(seen), n)
	}
	// Batches arrive in commit order, so the concatenated seqs are
	// strictly increasing — the property the replication stream needs.
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("onCommit seqs out of order at %d: %v", i, seen)
		}
	}
}

func TestOnCommitNotCalledOnFailedSync(t *testing.T) {
	var failSync bool
	j := openT(t, t.TempDir(), Options{SyncHook: func() error {
		if failSync {
			return errors.New("injected fsync failure")
		}
		return nil
	}})
	var called int
	j.SetOnCommit(func(batch []Record) { called += len(batch) })
	ctx := context.Background()
	if err := j.Append(ctx, Record{Op: OpCreate, ID: "x", Seed: 1, Kind: "lut"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	failSync = true
	if err := j.Append(ctx, Record{Op: OpStress, ID: "x", Hours: 1}); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	if called != 1 {
		t.Fatalf("onCommit saw %d records; an unacknowledged batch must never stream", called)
	}
}
