package journal

import (
	"testing"
)

// TestEngineRecordRoundTrip persists the full set of engine record
// kinds and checks every field survives a reopen (compaction included,
// since Open always compacts).
func TestEngineRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpEngineReg, ID: "e0", Phase: "stress",
		TempC: 110, Vdd: 1.2, Duty: 0.5})
	mustAppend(t, j, Record{Op: OpEngineSchedule, ID: "e0",
		StressEpochs: 32, SleepEpochs: 16, SleepTempC: 80, SleepVdd: -0.3})
	mustAppend(t, j, Record{Op: OpEngineEpoch, Epochs: 100, Hours: 0.5})
	mustAppend(t, j, Record{Op: OpEngineSet, ID: "e0", Phase: "sleep",
		TempC: 20, Vdd: -0.3, Duty: 1})
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Records()
	if got, want := ids(recs), "engine_reg:e0 engine_schedule:e0 engine_epoch: engine_set:e0"; got != want {
		t.Fatalf("replay = %q, want %q", got, want)
	}
	if r := recs[0]; r.Phase != "stress" || r.TempC != 110 || r.Vdd != 1.2 || r.Duty != 0.5 {
		t.Fatalf("reg record lost fields: %+v", r)
	}
	if r := recs[1]; r.StressEpochs != 32 || r.SleepEpochs != 16 || r.SleepTempC != 80 || r.SleepVdd != -0.3 {
		t.Fatalf("schedule record lost fields: %+v", r)
	}
	if r := recs[2]; r.Epochs != 100 || r.Hours != 0.5 {
		t.Fatalf("epoch record lost fields: %+v", r)
	}
	if r := recs[3]; r.Phase != "sleep" || r.TempC != 20 || r.Duty != 1 {
		t.Fatalf("set record lost fields: %+v", r)
	}
}

// TestEngineRemovePrunesChipHistory checks that removing an
// engine-native chip prunes its records like a fleet delete does —
// while the global epoch records, which carry no chip ID, survive both
// kinds of removal.
func TestEngineRemovePrunesChipHistory(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	mustAppend(t, j, Record{Op: OpEngineReg, ID: "e0", Phase: "stress", TempC: 110, Vdd: 1.2, Duty: 1})
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpEngineEpoch, Epochs: 10, Hours: 1})
	mustAppend(t, j, Record{Op: OpEngineSet, ID: "e0", Phase: "sleep", TempC: 20})
	mustAppend(t, j, Record{Op: OpEngineRemove, ID: "e0"})
	mustAppend(t, j, Record{Op: OpDelete, ID: "c0"})

	if got, want := ids(j.Records()), "engine_epoch:"; got != want {
		t.Fatalf("after removals replay = %q, want %q", got, want)
	}
}

// TestIsEngineOp pins the op classification the fleet replay skips on.
func TestIsEngineOp(t *testing.T) {
	engine := []Op{OpEngineReg, OpEngineRemove, OpEngineSet, OpEngineSchedule, OpEngineEpoch}
	for _, op := range engine {
		if !IsEngineOp(op) {
			t.Errorf("IsEngineOp(%q) = false", op)
		}
	}
	fleet := []Op{OpCreate, OpStress, OpRejuvenate, OpDelete, OpMeasure, OpOdometer}
	for _, op := range fleet {
		if IsEngineOp(op) {
			t.Errorf("IsEngineOp(%q) = true", op)
		}
	}
}
