package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustAppend(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
}

func ids(recs []Record) string {
	var b strings.Builder
	for i, r := range recs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(string(r.Op) + ":" + r.ID)
	}
	return b.String()
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 7, Kind: "bench"})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 110, Vdd: 1.2, Hours: 24, SampleHours: 12})
	mustAppend(t, j, Record{Op: OpRejuvenate, ID: "c0", TempC: 110, Vdd: -0.3, Hours: 6})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Records()
	if got, want := ids(recs), "create:c0 stress:c0 rejuvenate:c0"; got != want {
		t.Fatalf("replay = %q, want %q", got, want)
	}
	if recs[1].SampleHours != 12 || recs[1].Vdd != 1.2 || recs[2].Vdd != -0.3 {
		t.Fatalf("phase parameters lost in replay: %+v", recs)
	}
	if recs[0].Seq != 1 || recs[2].Seq != 3 {
		t.Fatalf("sequence numbers = %d..%d, want 1..3", recs[0].Seq, recs[2].Seq)
	}
}

func TestTruncatedFinalRecordTolerated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	j.Close()

	// Simulate a crash mid-write: a torn, incomplete final record.
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"stress","id":"c0","temp_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer j2.Close()
	if got := ids(j2.Records()); got != "create:c0 stress:c0" {
		t.Fatalf("replay after torn tail = %q", got)
	}
	// The torn tail must be physically gone: appends continue cleanly
	// and a third open sees a consistent history.
	mustAppend(t, j2, Record{Op: OpRejuvenate, ID: "c0", TempC: 110, Vdd: -0.3, Hours: 2})
	j2.Close()
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := ids(j3.Records()); got != "create:c0 stress:c0 rejuvenate:c0" {
		t.Fatalf("replay after repair = %q", got)
	}
}

func TestCorruptMiddleRecordRejected(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	j.Close()
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("garbage not json\n")
	f.WriteString(`{"seq":9,"op":"stress","id":"c0","vdd":1.2,"hours":1}` + "\n")
	f.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted corruption followed by valid records")
	}
}

func TestDeleteCompactsHistory(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	mustAppend(t, j, Record{Op: OpCreate, ID: "c1", Seed: 2})
	mustAppend(t, j, Record{Op: OpDelete, ID: "c0"})
	if got := ids(j.Records()); got != "create:c1" {
		t.Fatalf("live records after delete = %q, want only c1's create", got)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := ids(j2.Records()); got != "create:c1" {
		t.Fatalf("replay after delete = %q", got)
	}
	// Sequence numbering continues past the pruned records.
	mustAppend(t, j2, Record{Op: OpStress, ID: "c1", TempC: 85, Vdd: 1.2, Hours: 1})
	recs := j2.Records()
	if recs[len(recs)-1].Seq != 5 {
		t.Fatalf("next seq = %d, want 5", recs[len(recs)-1].Seq)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	for i := 0; i < 7; i++ {
		mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	}
	st := j.Stats()
	if st.Compactions < 2 { // one on open would be zero records; two size-triggered
		t.Fatalf("compactions = %d, want ≥ 2", st.Compactions)
	}
	if st.Records != 8 || st.LastSeq != 8 {
		t.Fatalf("stats after compaction: %+v", st)
	}
	log, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(log), "\n"); n >= 8 {
		t.Fatalf("log still holds %d records; compaction did not fold them", n)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.Records()) != 8 {
		t.Fatalf("replay after compaction = %d records, want 8", len(j2.Records()))
	}
}

func TestFsyncStats(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpDelete, ID: "c0"})
	st := j.Stats()
	if st.Appends != 2 || st.FsyncCount < 2 {
		t.Fatalf("stats = %+v, want 2 appends and ≥ 2 fsyncs", st)
	}
	if st.FsyncTotal <= 0 || st.FsyncMax <= 0 || st.FsyncMax > st.FsyncTotal {
		t.Fatalf("fsync latency accounting broken: %+v", st)
	}
}

func TestHookPartialWriteRepaired(t *testing.T) {
	dir := t.TempDir()
	fail := true
	j, err := Open(dir, Options{Hook: func(op string, b []byte) ([]byte, error) {
		if fail && op == "stress" {
			return b[:len(b)/2], errors.New("torn")
		}
		return b, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	if err := j.Append(Record{Op: OpStress, ID: "c0", Vdd: 1.2, Hours: 1}); err == nil {
		t.Fatal("torn append reported success")
	}
	// The half record must have been truncated away: the next append
	// lands on a clean boundary and the log replays fully.
	fail = false
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 2})
	if got := ids(j.Records()); got != "create:c0 stress:c0" {
		t.Fatalf("live records = %q", got)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Records()
	if got := ids(recs); got != "create:c0 stress:c0" {
		t.Fatalf("replay = %q", got)
	}
	if recs[1].Hours != 2 {
		t.Fatalf("surviving stress record = %+v, want the post-repair one", recs[1])
	}
}

func TestTrailingReadsPrunedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpMeasure, ID: "c0"}) // observed by the stress below: kept
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	mustAppend(t, j, Record{Op: OpMeasure, ID: "c0"}) // trailing: pruned
	mustAppend(t, j, Record{Op: OpMeasure, ID: "c0"}) // trailing: pruned
	mustAppend(t, j, Record{Op: OpCreate, ID: "m0", Seed: 2, Kind: "monitored"})
	mustAppend(t, j, Record{Op: OpOdometer, ID: "m0"}) // trailing: pruned
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(j2.Records()); got != "create:c0 measure:c0 stress:c0 create:m0" {
		t.Fatalf("replay after prune = %q", got)
	}
	// Sequence numbering still counts the pruned records, and the prune
	// is persisted: appends land after them, and a third open agrees.
	mustAppend(t, j2, Record{Op: OpStress, ID: "m0", TempC: 85, Vdd: 1.2, Hours: 1})
	recs := j2.Records()
	if recs[len(recs)-1].Seq != 8 {
		t.Fatalf("next seq = %d, want 8", recs[len(recs)-1].Seq)
	}
	j2.Close()
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := ids(j3.Records()); got != "create:c0 measure:c0 stress:c0 create:m0 stress:m0" {
		t.Fatalf("replay after persisted prune = %q", got)
	}
}

func TestSnapshotLogOverlapDeduplicated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	// Force the snapshot, then re-write the same records into the log —
	// the state a crash between snapshot rename and log truncate leaves.
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.WriteFile(filepath.Join(dir, "journal.log"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := ids(j2.Records()); got != "create:c0 stress:c0" {
		t.Fatalf("replay with overlapping snapshot+log = %q (double-applied?)", got)
	}
}
