package journal

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustAppend(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
}

func ids(recs []Record) string {
	var b strings.Builder
	for i, r := range recs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(string(r.Op) + ":" + r.ID)
	}
	return b.String()
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 7, Kind: "bench"})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 110, Vdd: 1.2, Hours: 24, SampleHours: 12})
	mustAppend(t, j, Record{Op: OpRejuvenate, ID: "c0", TempC: 110, Vdd: -0.3, Hours: 6})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Records()
	if got, want := ids(recs), "create:c0 stress:c0 rejuvenate:c0"; got != want {
		t.Fatalf("replay = %q, want %q", got, want)
	}
	if recs[1].SampleHours != 12 || recs[1].Vdd != 1.2 || recs[2].Vdd != -0.3 {
		t.Fatalf("phase parameters lost in replay: %+v", recs)
	}
	if recs[0].Seq != 1 || recs[2].Seq != 3 {
		t.Fatalf("sequence numbers = %d..%d, want 1..3", recs[0].Seq, recs[2].Seq)
	}
}

func TestTruncatedFinalRecordTolerated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	j.Close()

	// Simulate a crash mid-write: a torn, incomplete final record.
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"stress","id":"c0","temp_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer j2.Close()
	if got := ids(j2.Records()); got != "create:c0 stress:c0" {
		t.Fatalf("replay after torn tail = %q", got)
	}
	// The torn tail must be physically gone: appends continue cleanly
	// and a third open sees a consistent history.
	mustAppend(t, j2, Record{Op: OpRejuvenate, ID: "c0", TempC: 110, Vdd: -0.3, Hours: 2})
	j2.Close()
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := ids(j3.Records()); got != "create:c0 stress:c0 rejuvenate:c0" {
		t.Fatalf("replay after repair = %q", got)
	}
}

func TestCorruptMiddleRecordRejected(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	j.Close()
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("garbage not json\n")
	f.WriteString(`{"seq":9,"op":"stress","id":"c0","vdd":1.2,"hours":1}` + "\n")
	f.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted corruption followed by valid records")
	}
}

func TestDeleteCompactsHistory(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	mustAppend(t, j, Record{Op: OpCreate, ID: "c1", Seed: 2})
	mustAppend(t, j, Record{Op: OpDelete, ID: "c0"})
	if got := ids(j.Records()); got != "create:c1" {
		t.Fatalf("live records after delete = %q, want only c1's create", got)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := ids(j2.Records()); got != "create:c1" {
		t.Fatalf("replay after delete = %q", got)
	}
	// Sequence numbering continues past the pruned records.
	mustAppend(t, j2, Record{Op: OpStress, ID: "c1", TempC: 85, Vdd: 1.2, Hours: 1})
	recs := j2.Records()
	if recs[len(recs)-1].Seq != 5 {
		t.Fatalf("next seq = %d, want 5", recs[len(recs)-1].Seq)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	for i := 0; i < 7; i++ {
		mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	}
	// Compaction runs in the background supervisor, off the append hot
	// path (Open's compaction already counts 1); poll for its effect —
	// the log folding into the snapshot — instead of expecting it
	// synchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		log, err := os.ReadFile(filepath.Join(dir, "journal.log"))
		if err != nil {
			t.Fatal(err)
		}
		if n := strings.Count(string(log), "\n"); n < 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("log never folded after 8 appends with CompactEvery=4: %+v", j.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st := j.Stats()
	if st.Compactions < 2 { // the open plus at least one size-triggered run
		t.Fatalf("compactions = %d, want ≥ 2", st.Compactions)
	}
	if st.Records != 8 || st.LastSeq != 8 {
		t.Fatalf("stats after compaction: %+v", st)
	}
	if st.CompactError != "" {
		t.Fatalf("background compaction error: %s", st.CompactError)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.Records()) != 8 {
		t.Fatalf("replay after compaction = %d records, want 8", len(j2.Records()))
	}
}

func TestFsyncStats(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpDelete, ID: "c0"})
	st := j.Stats()
	if st.Appends != 2 || st.FsyncCount < 2 {
		t.Fatalf("stats = %+v, want 2 appends and ≥ 2 fsyncs", st)
	}
	if st.FsyncTotal <= 0 || st.FsyncMax <= 0 || st.FsyncMax > st.FsyncTotal {
		t.Fatalf("fsync latency accounting broken: %+v", st)
	}
}

func TestHookPartialWriteRepaired(t *testing.T) {
	dir := t.TempDir()
	fail := true
	j, err := Open(dir, Options{Hook: func(op string, b []byte) ([]byte, error) {
		if fail && op == "stress" {
			return b[:len(b)/2], errors.New("torn")
		}
		return b, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	if err := j.Append(context.Background(), Record{Op: OpStress, ID: "c0", Vdd: 1.2, Hours: 1}); err == nil {
		t.Fatal("torn append reported success")
	}
	// The half record must have been truncated away: the next append
	// lands on a clean boundary and the log replays fully.
	fail = false
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 2})
	if got := ids(j.Records()); got != "create:c0 stress:c0" {
		t.Fatalf("live records = %q", got)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Records()
	if got := ids(recs); got != "create:c0 stress:c0" {
		t.Fatalf("replay = %q", got)
	}
	if recs[1].Hours != 2 {
		t.Fatalf("surviving stress record = %+v, want the post-repair one", recs[1])
	}
}

func TestTrailingReadsPrunedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpMeasure, ID: "c0"}) // observed by the stress below: kept
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	mustAppend(t, j, Record{Op: OpMeasure, ID: "c0"}) // trailing: pruned
	mustAppend(t, j, Record{Op: OpMeasure, ID: "c0"}) // trailing: pruned
	mustAppend(t, j, Record{Op: OpCreate, ID: "m0", Seed: 2, Kind: "monitored"})
	mustAppend(t, j, Record{Op: OpOdometer, ID: "m0"}) // trailing: pruned
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(j2.Records()); got != "create:c0 measure:c0 stress:c0 create:m0" {
		t.Fatalf("replay after prune = %q", got)
	}
	// Sequence numbering still counts the pruned records, and the prune
	// is persisted: appends land after them, and a third open agrees.
	mustAppend(t, j2, Record{Op: OpStress, ID: "m0", TempC: 85, Vdd: 1.2, Hours: 1})
	recs := j2.Records()
	if recs[len(recs)-1].Seq != 8 {
		t.Fatalf("next seq = %d, want 8", recs[len(recs)-1].Seq)
	}
	j2.Close()
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := ids(j3.Records()); got != "create:c0 measure:c0 stress:c0 create:m0 stress:m0" {
		t.Fatalf("replay after persisted prune = %q", got)
	}
}

func TestSnapshotLogOverlapDeduplicated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	// Force the snapshot, then re-write the same records into the log —
	// the state a crash between snapshot rename and log truncate leaves.
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.WriteFile(filepath.Join(dir, "journal.log"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := ids(j2.Records()); got != "create:c0 stress:c0" {
		t.Fatalf("replay with overlapping snapshot+log = %q (double-applied?)", got)
	}
}

// corruptByteInLog flips one byte inside the JSON payload of the given
// 1-based line of journal.log — simulated bit rot for the checksum to
// catch — and returns the seq numbers of every line from that one on.
func corruptByteInLog(t *testing.T, dir string, lineNo int) {
	t.Helper()
	path := filepath.Join(dir, "journal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if lineNo > len(lines) || lines[lineNo-1] == "" {
		t.Fatalf("log has no line %d", lineNo)
	}
	line := []byte(lines[lineNo-1])
	payloadEnd := strings.LastIndexByte(string(line), '\t')
	if payloadEnd < 0 {
		t.Fatalf("line %d carries no checksum: %q", lineNo, line)
	}
	line[payloadEnd/2] ^= 0x01
	lines[lineNo-1] = string(line)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChecksumCatchesBitRotAndRepairSalvages is the ISSUE salvage
// scenario: a mid-file checksum-corrupted record refuses startup by
// default, and opens with Repair after backing the file up and
// reporting exactly which seqs were dropped.
func TestChecksumCatchesBitRotAndRepairSalvages(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{CompactEvery: -1}) // keep everything in the log
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 90, Vdd: 1.25, Hours: 2})
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 95, Vdd: 1.3, Hours: 3})
	j.Close()

	corruptByteInLog(t, dir, 2)

	// Default: refuse to start, and say how to fix it.
	_, err = Open(dir, Options{})
	if err == nil {
		t.Fatal("open accepted a checksum-corrupted mid-log record")
	}
	if !strings.Contains(err.Error(), "repair") {
		t.Fatalf("refusal does not point at the salvage path: %v", err)
	}

	// With Repair: the file is backed up, truncated at the bad record,
	// and the dropped seqs (2, 3, 4 — the corrupt one and everything
	// after it) are reported.
	j2, err := Open(dir, Options{Repair: true})
	if err != nil {
		t.Fatalf("open with Repair: %v", err)
	}
	defer j2.Close()
	reps := j2.Repairs()
	if len(reps) != 1 {
		t.Fatalf("repairs = %+v, want exactly one", reps)
	}
	rep := reps[0]
	if rep.Line != 2 || rep.DroppedRecords != 3 {
		t.Fatalf("repair report = %+v, want line 2 and 3 dropped records", rep)
	}
	if len(rep.DroppedSeqs) != 2 || rep.DroppedSeqs[0] != 3 || rep.DroppedSeqs[1] != 4 {
		t.Fatalf("dropped seqs = %v, want [3 4] (the still-parseable records past the corruption)", rep.DroppedSeqs)
	}
	if _, err := os.Stat(rep.Backup); err != nil {
		t.Fatalf("backup %q missing: %v", rep.Backup, err)
	}
	if got := ids(j2.Records()); got != "create:c0" {
		t.Fatalf("salvaged replay = %q, want only the pre-corruption record", got)
	}
	// The salvaged journal keeps working, and a plain open accepts it.
	mustAppend(t, j2, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 9})
	j2.Close()
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("plain open after salvage: %v", err)
	}
	defer j3.Close()
	if got := ids(j3.Records()); got != "create:c0 stress:c0" {
		t.Fatalf("replay after salvage+append = %q", got)
	}
}

// TestLegacyChecksumlessLogAccepted: logs written before the CRC32
// suffix existed are bare JSON lines; they must still load.
func TestLegacyChecksumlessLogAccepted(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"seq":1,"op":"create","id":"c0","seed":7,"kind":"bench"}` + "\n" +
		`{"seq":2,"op":"stress","id":"c0","temp_c":85,"vdd":1.2,"hours":4}` + "\n"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal.log"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open legacy log: %v", err)
	}
	defer j.Close()
	recs := j.Records()
	if got := ids(recs); got != "create:c0 stress:c0" {
		t.Fatalf("legacy replay = %q", got)
	}
	if recs[1].Hours != 4 || recs[1].Seq != 2 {
		t.Fatalf("legacy record lost fields: %+v", recs[1])
	}
}

// TestGroupCommitBatchesConcurrentAppends holds the first fsync open
// until all eight appenders have staged their records, so the batching
// is deterministic: at most two fsyncs cover eight appends, and the
// replayed history is complete.
func TestGroupCommitBatchesConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	const appenders = 8
	var (
		staged    atomic.Int32
		release   = make(chan struct{})
		firstSync sync.Once
	)
	j, err := Open(dir, Options{
		CompactEvery: -1,
		Hook: func(op string, b []byte) ([]byte, error) {
			if op == string(OpStress) && staged.Add(1) == appenders {
				close(release)
			}
			return b, nil
		},
		SyncHook: func() error {
			firstSync.Do(func() { <-release }) // park the leader until all 8 staged
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, appenders)
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = j.Append(context.Background(), Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: float64(i + 1)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := j.Stats()
	if st.Appends != appenders {
		t.Fatalf("appends = %d, want %d", st.Appends, appenders)
	}
	if st.FsyncCount >= appenders {
		t.Fatalf("fsyncs = %d for %d appends; group commit is not batching", st.FsyncCount, appenders)
	}
	if st.BatchMax < 2 {
		t.Fatalf("batch max = %d, want > 1", st.BatchMax)
	}
	seen := make(map[uint64]bool)
	for _, rec := range j.Records() {
		if seen[rec.Seq] {
			t.Fatalf("duplicate seq %d", rec.Seq)
		}
		seen[rec.Seq] = true
	}
	if len(seen) != appenders {
		t.Fatalf("live records = %d, want %d", len(seen), appenders)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.Records()) != appenders {
		t.Fatalf("replay = %d records, want %d", len(j2.Records()), appenders)
	}
}

// TestFsyncFailureFailsBatchAndProbeRecovers drives the degraded-mode
// journal contract: a failing fsync fails every append in the batch
// (nothing is acknowledged), the on-disk and in-memory histories roll
// back together, Probe reports the fault while it lasts and recovery
// once it clears, and appends work again afterwards.
func TestFsyncFailureFailsBatchAndProbeRecovers(t *testing.T) {
	dir := t.TempDir()
	var failing atomic.Bool
	j, err := Open(dir, Options{SyncHook: func() error {
		if failing.Load() {
			return errors.New("injected fsync failure")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})

	failing.Store(true)
	if err := j.Append(context.Background(), Record{Op: OpStress, ID: "c0", Vdd: 1.2, Hours: 1}); err == nil {
		t.Fatal("append acknowledged despite failed fsync")
	}
	if err := j.Probe(); err == nil {
		t.Fatal("probe reported recovery while fsync still fails")
	}
	if got := ids(j.Records()); got != "create:c0" {
		t.Fatalf("live records after failed batch = %q (phantom record?)", got)
	}

	failing.Store(false)
	if err := j.Probe(); err != nil {
		t.Fatalf("probe after fault cleared: %v", err)
	}
	mustAppend(t, j, Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 2})
	recs := j.Records()
	if got := ids(recs); got != "create:c0 stress:c0" {
		t.Fatalf("records after recovery = %q", got)
	}
	// The failed append's seq was rolled back: numbering stays dense.
	if recs[1].Seq != 2 {
		t.Fatalf("post-recovery seq = %d, want 2", recs[1].Seq)
	}
}

// TestOversizedLineRefusedAndSalvageable: a line past the 1 MiB bound
// is corruption (refused by default, salvageable with Repair) even
// though the scanner cannot see past it.
func TestOversizedLineRefusedAndSalvageable(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpCreate, ID: "c0", Seed: 1})
	j.Close()
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{'x'}, maxLine+2)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted an oversized line")
	}
	j2, err := Open(dir, Options{Repair: true})
	if err != nil {
		t.Fatalf("open with Repair: %v", err)
	}
	defer j2.Close()
	if got := ids(j2.Records()); got != "create:c0" {
		t.Fatalf("salvaged replay = %q", got)
	}
}

// BenchmarkAppendGroupCommit measures group commit under concurrent
// mutators (≥ 8-way): fsyncs/append should drop well below 1, where
// the old one-fsync-per-append design pinned it.
func BenchmarkAppendGroupCommit(b *testing.B) {
	j, err := Open(b.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.SetParallelism(8) // ≥ 8 concurrent appenders per GOMAXPROCS
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := j.Append(context.Background(), Record{Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := j.Stats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.FsyncCount)/float64(st.Appends), "fsyncs/append")
		b.ReportMetric(float64(st.BatchMax), "batch-max")
	}
}
