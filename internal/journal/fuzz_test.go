package journal

import (
	"bytes"
	"testing"
)

// FuzzParseLine throws arbitrary bytes at the journal line parser. It
// must never panic, and whenever it does accept a line the record must
// survive a re-encode → re-parse round trip — otherwise a salvaged log
// could mutate history on the next startup.
func FuzzParseLine(f *testing.F) {
	// A genuine checksummed line, exactly as encodeLine writes it.
	if line, err := encodeLine(Record{Seq: 7, Op: OpStress, ID: "c0", TempC: 85, Vdd: 1.2, Hours: 4}); err == nil {
		f.Add(line[:len(line)-1]) // parseLine sees lines without the trailing \n
	}
	// A legacy checksum-less line.
	f.Add([]byte(`{"seq":1,"op":"create","id":"c0","seed":7}`))
	// A bit-flipped checksum (mismatch), a torn prefix, a malformed
	// checksum suffix, tab-only, and plain garbage.
	f.Add([]byte(`{"seq":1,"op":"create","id":"c0"}` + "\tc00000000"))
	f.Add([]byte(`{"seq":3,"op":"stress","id":"c0","temp_`))
	f.Add([]byte(`{"seq":1,"op":"delete","id":"c0"}` + "\tcZZZZZZZZ"))
	f.Add([]byte("\t"))
	f.Add([]byte("garbage not json"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, line []byte) {
		if bytes.IndexByte(line, '\n') >= 0 {
			t.Skip() // the scanner guarantees parseLine never sees a newline
		}
		rec, err := parseLine(line)
		if err != nil {
			return
		}
		// Accepted lines must round-trip losslessly.
		reenc, err := encodeLine(rec)
		if err != nil {
			t.Fatalf("accepted record %+v does not re-encode: %v", rec, err)
		}
		rec2, err := parseLine(bytes.TrimSuffix(reenc, []byte("\n")))
		if err != nil {
			t.Fatalf("re-encoded line rejected: %v", err)
		}
		if rec != rec2 {
			t.Fatalf("round trip mutated the record: %+v -> %+v", rec, rec2)
		}
	})
}
