// Package fit implements the parameter-extraction machinery behind the
// paper's Table 3 ("the extracted parameters we use in the model"): a
// from-scratch Levenberg–Marquardt nonlinear least-squares solver with a
// numeric Jacobian, plus the paper's specific model shapes — the wearout
// curve ΔTd(t) = β·ln(1 + C·t) (Eq. 10) and the recovery curve of
// Eq. 11 — ready to fit against measured series.
package fit

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/series"
)

// Model is a parameterized scalar function y = f(x; θ).
type Model func(x float64, theta []float64) float64

// Options tunes the Levenberg–Marquardt iteration. The zero value is
// replaced by DefaultOptions.
type Options struct {
	MaxIter   int     // iteration cap
	TolRel    float64 // relative SSE improvement convergence threshold
	Lambda0   float64 // initial damping
	LambdaUp  float64 // damping multiplier on a rejected step
	LambdaDn  float64 // damping divisor on an accepted step
	DiffScale float64 // relative finite-difference step for the Jacobian
}

// DefaultOptions returns settings that converge for all the paper's
// curve shapes.
func DefaultOptions() Options {
	return Options{
		MaxIter:   200,
		TolRel:    1e-12,
		Lambda0:   1e-3,
		LambdaUp:  10,
		LambdaDn:  10,
		DiffScale: 1e-6,
	}
}

// Result is a completed fit.
type Result struct {
	Theta      []float64 // fitted parameters
	SSE        float64   // sum of squared residuals
	RMSE       float64
	Iterations int
	Converged  bool
}

// Curve performs a Levenberg–Marquardt fit of model to the (x, y)
// samples starting from theta0. It returns an error for degenerate
// inputs or if the normal equations become singular at every damping
// level.
func Curve(model Model, x, y []float64, theta0 []float64, opt Options) (Result, error) {
	if model == nil {
		return Result{}, errors.New("fit: nil model")
	}
	if len(x) != len(y) {
		return Result{}, errors.New("fit: mismatched x/y lengths")
	}
	np := len(theta0)
	if np == 0 {
		return Result{}, errors.New("fit: no parameters")
	}
	if len(x) < np {
		return Result{}, fmt.Errorf("fit: %d samples cannot determine %d parameters", len(x), np)
	}
	if opt.MaxIter == 0 {
		opt = DefaultOptions()
	}

	theta := append([]float64(nil), theta0...)
	sse := sumSq(model, x, y, theta)
	if math.IsNaN(sse) || math.IsInf(sse, 0) {
		return Result{}, errors.New("fit: model not finite at the initial guess")
	}
	lambda := opt.Lambda0
	res := Result{Theta: theta, SSE: sse}

	for iter := 1; iter <= opt.MaxIter; iter++ {
		res.Iterations = iter
		jac := jacobian(model, x, theta, opt.DiffScale)
		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = Jᵀr.
		jtj := make([][]float64, np)
		jtr := make([]float64, np)
		for i := 0; i < np; i++ {
			jtj[i] = make([]float64, np)
		}
		for k := range x {
			r := y[k] - model(x[k], theta)
			for i := 0; i < np; i++ {
				jtr[i] += jac[k][i] * r
				for j := 0; j < np; j++ {
					jtj[i][j] += jac[k][i] * jac[k][j]
				}
			}
		}

		accepted := false
		for try := 0; try < 8; try++ {
			a := make([][]float64, np)
			for i := range a {
				a[i] = append([]float64(nil), jtj[i]...)
				a[i][i] *= 1 + lambda
			}
			delta, err := solve(a, jtr)
			if err != nil {
				lambda *= opt.LambdaUp
				continue
			}
			cand := make([]float64, np)
			for i := range cand {
				cand[i] = theta[i] + delta[i]
			}
			candSSE := sumSq(model, x, y, cand)
			if !math.IsNaN(candSSE) && candSSE < sse {
				rel := (sse - candSSE) / math.Max(sse, 1e-300)
				theta, sse = cand, candSSE
				lambda /= opt.LambdaDn
				accepted = true
				if rel < opt.TolRel {
					res.Converged = true
				}
				break
			}
			lambda *= opt.LambdaUp
		}
		res.Theta, res.SSE = theta, sse
		if res.Converged || !accepted {
			// No damping level improved: stationary point (converged
			// in practice) — report what we have.
			res.Converged = res.Converged || sse < math.Inf(1)
			break
		}
	}
	res.RMSE = math.Sqrt(res.SSE / float64(len(x)))
	return res, nil
}

// sumSq returns the SSE of the model against the samples.
func sumSq(model Model, x, y, theta []float64) float64 {
	s := 0.0
	for i := range x {
		r := y[i] - model(x[i], theta)
		s += r * r
	}
	return s
}

// jacobian computes ∂f/∂θ by central differences at every sample.
func jacobian(model Model, x, theta []float64, scale float64) [][]float64 {
	if scale <= 0 {
		scale = 1e-6
	}
	np := len(theta)
	out := make([][]float64, len(x))
	work := append([]float64(nil), theta...)
	for k := range x {
		out[k] = make([]float64, np)
	}
	for i := 0; i < np; i++ {
		h := scale * math.Max(math.Abs(theta[i]), 1)
		work[i] = theta[i] + h
		for k := range x {
			out[k][i] = model(x[k], work)
		}
		work[i] = theta[i] - h
		for k := range x {
			out[k][i] = (out[k][i] - model(x[k], work)) / (2 * h)
		}
		work[i] = theta[i]
	}
	return out
}

// solve performs Gaussian elimination with partial pivoting on a·x = b.
// a and b are consumed.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	bb := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, errors.New("fit: singular normal equations")
		}
		a[col], a[pivot] = a[pivot], a[col]
		bb[col], bb[pivot] = bb[pivot], bb[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			bb[r] -= f * bb[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := bb[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// WearoutModel is the paper's Eq. 10 shape: ΔTd(t) = β·ln(1 + C·t) with
// θ = [β, C].
func WearoutModel(t float64, theta []float64) float64 {
	return theta[0] * math.Log1p(theta[1]*t)
}

// RecoveryModel is the recovered-delay shape implied by Eqs. 11/16:
// RD(t2) = ΔTd(t1)·φr·(1 + ln(1+C·t2)) / (1 + ln(1+C·(t1+t2))) with
// θ = [amp, C] where amp = ΔTd(t1)·φr; t1 is a fixed, known stress
// history supplied by the caller.
func RecoveryModel(t1 float64) Model {
	return func(t2 float64, theta []float64) float64 {
		num := 1 + math.Log1p(theta[1]*t2)
		den := 1 + math.Log1p(theta[1]*(t1+t2))
		return theta[0] * num / den
	}
}

// WearoutParams is the Table 3 extraction result for one stress case.
type WearoutParams struct {
	BetaNS float64 // β in nanoseconds
	CPerS  float64 // C in 1/s
	RMSE   float64
	R2     float64
}

// ExtractWearout fits Eq. 10 to a measured ΔTd(t) series (nanoseconds
// versus seconds).
func ExtractWearout(s *series.Series) (WearoutParams, error) {
	if s.Len() < 3 {
		return WearoutParams{}, errors.New("fit: need at least 3 samples")
	}
	x, y := s.Times(), s.Values()
	res, err := Curve(WearoutModel, x, y, []float64{maxAbs(y), 1e-2}, DefaultOptions())
	if err != nil {
		return WearoutParams{}, err
	}
	return WearoutParams{
		BetaNS: res.Theta[0],
		CPerS:  res.Theta[1],
		RMSE:   res.RMSE,
		R2:     rSquared(y, predict(WearoutModel, x, res.Theta)),
	}, nil
}

// RecoveryParams is the extraction result for one recovery case.
type RecoveryParams struct {
	AmpNS float64 // ΔTd(t1)·φr in nanoseconds
	CPerS float64
	RMSE  float64
	R2    float64
}

// ExtractRecovery fits the recovery shape to a measured RD(t2) series,
// given the known stress history t1.
func ExtractRecovery(s *series.Series, t1Seconds float64) (RecoveryParams, error) {
	if s.Len() < 3 {
		return RecoveryParams{}, errors.New("fit: need at least 3 samples")
	}
	if t1Seconds <= 0 {
		return RecoveryParams{}, errors.New("fit: stress history t1 must be positive")
	}
	x, y := s.Times(), s.Values()
	model := RecoveryModel(t1Seconds)
	res, err := Curve(model, x, y, []float64{maxAbs(y), 1e-2}, DefaultOptions())
	if err != nil {
		return RecoveryParams{}, err
	}
	return RecoveryParams{
		AmpNS: res.Theta[0],
		CPerS: res.Theta[1],
		RMSE:  res.RMSE,
		R2:    rSquared(y, predict(model, x, res.Theta)),
	}, nil
}

func predict(m Model, x, theta []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = m(x[i], theta)
	}
	return out
}

func rSquared(y, yhat []float64) float64 {
	my := 0.0
	for _, v := range y {
		my += v
	}
	my /= float64(len(y))
	var ssTot, ssRes float64
	for i := range y {
		ssTot += (y[i] - my) * (y[i] - my)
		ssRes += (y[i] - yhat[i]) * (y[i] - yhat[i])
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

func maxAbs(xs []float64) float64 {
	m := 1e-9
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
