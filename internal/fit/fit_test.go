package fit

import (
	"math"
	"testing"

	"selfheal/internal/rng"
	"selfheal/internal/series"
	"selfheal/internal/units"
)

func TestCurveRecoversLinearParams(t *testing.T) {
	model := func(x float64, th []float64) float64 { return th[0]*x + th[1] }
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // 2x+1
	res, err := Curve(model, x, y, []float64{0.5, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-2) > 1e-6 || math.Abs(res.Theta[1]-1) > 1e-6 {
		t.Errorf("theta = %v", res.Theta)
	}
	if res.RMSE > 1e-6 {
		t.Errorf("RMSE = %v", res.RMSE)
	}
}

func TestCurveRecoversNonlinearParams(t *testing.T) {
	// Exponential decay: a·exp(−b·x).
	model := func(x float64, th []float64) float64 { return th[0] * math.Exp(-th[1]*x) }
	var x, y []float64
	for i := 0; i <= 20; i++ {
		xi := float64(i) / 2
		x = append(x, xi)
		y = append(y, 3.5*math.Exp(-0.7*xi))
	}
	res, err := Curve(model, x, y, []float64{1, 0.1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-3.5) > 1e-4 || math.Abs(res.Theta[1]-0.7) > 1e-4 {
		t.Errorf("theta = %v", res.Theta)
	}
}

func TestCurveRecoversWearoutParams(t *testing.T) {
	// Synthesize the paper's Eq. 10 with known β, C and verify recovery
	// from a generic starting point.
	trueTheta := []float64{2.3, 0.01}
	var x, y []float64
	for i := 1; i <= 48; i++ {
		xi := float64(i) * 1800
		x = append(x, xi)
		y = append(y, WearoutModel(xi, trueTheta))
	}
	res, err := Curve(WearoutModel, x, y, []float64{1, 1e-3}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-2.3) > 1e-3 || math.Abs(res.Theta[1]-0.01)/0.01 > 1e-3 {
		t.Errorf("theta = %v, want %v", res.Theta, trueTheta)
	}
}

func TestCurveWithNoise(t *testing.T) {
	src := rng.New(7)
	trueTheta := []float64{2.3, 0.01}
	var x, y []float64
	for i := 1; i <= 96; i++ {
		xi := float64(i) * 900
		x = append(x, xi)
		y = append(y, WearoutModel(xi, trueTheta)+src.NormalWith(0, 0.02))
	}
	res, err := Curve(WearoutModel, x, y, []float64{1, 1e-3}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-2.3) > 0.1 || math.Abs(res.Theta[1]-0.01)/0.01 > 0.1 {
		t.Errorf("noisy fit theta = %v", res.Theta)
	}
}

func TestCurveInputValidation(t *testing.T) {
	model := func(x float64, th []float64) float64 { return th[0] * x }
	if _, err := Curve(nil, []float64{1}, []float64{1}, []float64{1}, DefaultOptions()); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Curve(model, []float64{1, 2}, []float64{1}, []float64{1}, DefaultOptions()); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Curve(model, []float64{1}, []float64{1}, nil, DefaultOptions()); err == nil {
		t.Error("no parameters accepted")
	}
	if _, err := Curve(model, []float64{1}, []float64{1}, []float64{1, 2}, DefaultOptions()); err == nil {
		t.Error("underdetermined system accepted")
	}
	bad := func(x float64, th []float64) float64 { return math.NaN() }
	if _, err := Curve(bad, []float64{1, 2}, []float64{1, 2}, []float64{1}, DefaultOptions()); err == nil {
		t.Error("non-finite initial model accepted")
	}
}

func TestCurveZeroOptionsUsesDefaults(t *testing.T) {
	model := func(x float64, th []float64) float64 { return th[0] * x }
	res, err := Curve(model, []float64{1, 2, 3}, []float64{2, 4, 6}, []float64{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta[0]-2) > 1e-9 {
		t.Errorf("theta = %v", res.Theta)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}} // rank 1
	if _, err := solve(a, []float64{1, 2}); err == nil {
		t.Error("singular system solved")
	}
}

func TestSolveWellConditioned(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	x, err := solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v", x)
	}
}

func TestExtractWearout(t *testing.T) {
	s := series.New("dTd")
	trueTheta := []float64{2.2 / math.Log1p(0.01*86400), 0.01}
	for i := 1; i <= 72; i++ {
		tt := units.Seconds(i) * 20 * units.Minute
		s.Add(tt, WearoutModel(float64(tt), trueTheta))
	}
	p, err := ExtractWearout(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.BetaNS-trueTheta[0])/trueTheta[0] > 0.01 {
		t.Errorf("β = %v, want %v", p.BetaNS, trueTheta[0])
	}
	if math.Abs(p.CPerS-0.01)/0.01 > 0.01 {
		t.Errorf("C = %v, want 0.01", p.CPerS)
	}
	if p.R2 < 0.999 {
		t.Errorf("R² = %v", p.R2)
	}
}

func TestExtractWearoutTooFewSamples(t *testing.T) {
	s := series.New("x")
	s.Add(0, 0)
	s.Add(1, 1)
	if _, err := ExtractWearout(s); err == nil {
		t.Error("2 samples accepted")
	}
}

func TestExtractRecovery(t *testing.T) {
	t1 := float64(24 * units.Hour)
	model := RecoveryModel(t1)
	trueTheta := []float64{2.0, 0.01}
	s := series.New("RD")
	for i := 1; i <= 36; i++ {
		tt := units.Seconds(i) * 10 * units.Minute
		s.Add(tt, model(float64(tt), trueTheta))
	}
	p, err := ExtractRecovery(s, t1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.AmpNS-2.0)/2.0 > 0.02 {
		t.Errorf("amp = %v, want 2.0", p.AmpNS)
	}
	if p.R2 < 0.999 {
		t.Errorf("R² = %v", p.R2)
	}
}

func TestExtractRecoveryValidation(t *testing.T) {
	s := series.New("RD")
	for i := 0; i < 5; i++ {
		s.Add(units.Seconds(i), float64(i))
	}
	if _, err := ExtractRecovery(s, 0); err == nil {
		t.Error("t1=0 accepted")
	}
	short := series.New("RD")
	short.Add(0, 0)
	if _, err := ExtractRecovery(short, 100); err == nil {
		t.Error("1 sample accepted")
	}
}

// TestRecoveryModelShape encodes the paper's prose about Eq. 3/11: fast
// early recovery, slow logarithmic tail, never complete.
func TestRecoveryModelShape(t *testing.T) {
	m := RecoveryModel(float64(24 * units.Hour))
	theta := []float64{2.0, 0.01}
	firstHour := m(3600, theta) - m(0, theta)
	sixthHour := m(6*3600, theta) - m(5*3600, theta)
	if firstHour <= sixthHour {
		t.Errorf("recovery not decelerating: %v vs %v", firstHour, sixthHour)
	}
	// Asymptote below the full amplitude at any finite time.
	if m(1e9, theta) >= theta[0] {
		t.Errorf("recovery reached full amplitude: %v", m(1e9, theta))
	}
}

func BenchmarkCurveWearout(b *testing.B) {
	trueTheta := []float64{2.3, 0.01}
	var x, y []float64
	for i := 1; i <= 72; i++ {
		xi := float64(i) * 1200
		x = append(x, xi)
		y = append(y, WearoutModel(xi, trueTheta))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Curve(WearoutModel, x, y, []float64{1, 1e-3}, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
