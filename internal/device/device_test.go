package device

import (
	"math"
	"testing"
	"testing/quick"

	"selfheal/internal/td"
	"selfheal/internal/units"
)

var hot = units.Celsius(110).Kelvin()

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.Vth0 = 0 },
		func(p *Params) { p.Vdd = p.Vth0 },
		func(p *Params) { p.Td0NS = 0 },
		func(p *Params) { p.SubthresholdSwingMV = 0 },
		func(p *Params) { p.Ileak0NA = -1 },
	}
	for i, mod := range mods {
		p := DefaultParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Error("Kind.String wrong")
	}
}

func TestStressedBiasRegions(t *testing.T) {
	n := New("n", NMOS, DefaultParams())
	p := New("p", PMOS, DefaultParams())
	cases := []struct {
		vgs          units.Volt
		nWant, pWant bool
	}{
		{1.2, true, false},   // full positive bias: PBTI stress for NMOS
		{-1.2, false, true},  // full negative bias: NBTI stress for PMOS
		{0, false, false},    // unbiased
		{0.1, false, false},  // below half-threshold: weak, ignored
		{-0.1, false, false}, // below half-threshold: weak, ignored
		{0.3, true, false},   // above half of Vth0=0.4
		{-0.3, false, true},
	}
	for _, c := range cases {
		if got := n.Stressed(c.vgs); got != c.nWant {
			t.Errorf("NMOS.Stressed(%v) = %v, want %v", c.vgs, got, c.nWant)
		}
		if got := p.Stressed(c.vgs); got != c.pWant {
			t.Errorf("PMOS.Stressed(%v) = %v, want %v", c.vgs, got, c.pWant)
		}
	}
}

func TestFreshDelayAtNominal(t *testing.T) {
	tr := New("m1", NMOS, DefaultParams())
	d, err := tr.Delay(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-tr.Params.Td0NS) > 1e-12 {
		t.Errorf("fresh delay = %v, want Td0 %v", d, tr.Params.Td0NS)
	}
}

func TestDelayGrowsWithAging(t *testing.T) {
	tr := New("m1", NMOS, DefaultParams())
	fresh, _ := tr.Delay(1.2)
	tr.Stress(td.DefaultParams(), 1.2, hot, 1, 24*units.Hour)
	aged, err := tr.Delay(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if aged <= fresh {
		t.Errorf("aged delay %v not above fresh %v", aged, fresh)
	}
	// Eq. 6 check: Δtd = td0·ΔVth/(Vdd−Vth0).
	want := fresh * tr.Aging.Vth() / 0.8
	if math.Abs((aged-fresh)-want) > 1e-12 {
		t.Errorf("Δtd = %v, want %v", aged-fresh, want)
	}
	if math.Abs(tr.DelayShift()-(aged-fresh)) > 1e-12 {
		t.Errorf("DelayShift = %v, want %v", tr.DelayShift(), aged-fresh)
	}
}

func TestDelayIncreasesAtLowerSupply(t *testing.T) {
	tr := New("m1", NMOS, DefaultParams())
	nominal, _ := tr.Delay(1.2)
	low, err := tr.Delay(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if low <= nominal {
		t.Errorf("delay at 1.0 V (%v) not above 1.2 V (%v)", low, nominal)
	}
}

func TestDelayErrorsBelowThreshold(t *testing.T) {
	tr := New("m1", NMOS, DefaultParams())
	if _, err := tr.Delay(0.4); err == nil {
		t.Error("Delay at Vth accepted")
	}
	if _, err := tr.Delay(0); err == nil {
		t.Error("Delay at 0 V accepted")
	}
}

func TestRecoverReducesDelay(t *testing.T) {
	tr := New("m1", NMOS, DefaultParams())
	tp := td.DefaultParams()
	tr.Stress(tp, 1.2, hot, 1, 24*units.Hour)
	aged, _ := tr.Delay(1.2)
	tr.Recover(tp, 0.3, hot, 6*units.Hour)
	healed, _ := tr.Delay(1.2)
	if healed >= aged {
		t.Errorf("recovery did not reduce delay: %v -> %v", aged, healed)
	}
	fresh := tr.Params.Td0NS
	if healed < fresh {
		t.Errorf("recovered below fresh delay: %v < %v", healed, fresh)
	}
}

func TestNegativeVrevMagnitude(t *testing.T) {
	// Passing the rail voltage (−0.3) or its magnitude (0.3) must heal
	// identically: the model works with magnitudes.
	tp := td.DefaultParams()
	a := New("a", NMOS, DefaultParams())
	b := New("b", NMOS, DefaultParams())
	a.Stress(tp, 1.2, hot, 1, 24*units.Hour)
	b.Stress(tp, 1.2, hot, 1, 24*units.Hour)
	a.Recover(tp, -0.3, hot, 6*units.Hour)
	b.Recover(tp, 0.3, hot, 6*units.Hour)
	if a.VthShift() != b.VthShift() {
		t.Errorf("sign sensitivity: %v vs %v", a.VthShift(), b.VthShift())
	}
}

func TestLeakageDropsWithAging(t *testing.T) {
	tr := New("m1", NMOS, DefaultParams())
	fresh := tr.Leakage()
	if fresh != tr.Params.Ileak0NA {
		t.Errorf("fresh leakage = %v", fresh)
	}
	tr.Stress(td.DefaultParams(), 1.2, hot, 1, 24*units.Hour)
	if aged := tr.Leakage(); aged >= fresh {
		t.Errorf("leakage did not drop with aging: %v -> %v", fresh, aged)
	}
}

func TestLeakageDecadePerSwing(t *testing.T) {
	tr := New("m1", NMOS, DefaultParams())
	// Force a shift of exactly one subthreshold swing (90 mV) and check
	// a 10x leakage reduction using the td state indirectly: instead,
	// verify via the closed-form relationship on a small known shift.
	tr.Stress(td.DefaultParams(), 1.2, hot, 1, 24*units.Hour)
	shift := tr.VthShift()
	want := tr.Params.Ileak0NA * math.Pow(10, -shift/0.09)
	if got := tr.Leakage(); math.Abs(got-want) > 1e-9 {
		t.Errorf("leakage = %v, want %v", got, want)
	}
}

func TestReset(t *testing.T) {
	tr := New("m1", NMOS, DefaultParams())
	tr.Stress(td.DefaultParams(), 1.2, hot, 1, units.Hour)
	tr.Reset()
	if tr.VthShift() != 0 {
		t.Error("reset did not clear aging")
	}
}

func TestPathDelay(t *testing.T) {
	p := DefaultParams()
	path := []*Transistor{New("a", NMOS, p), New("b", NMOS, p), New("c", PMOS, p), New("d", NMOS, p)}
	got, err := PathDelay(1.2, path)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * p.Td0NS
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("fresh path delay = %v, want %v", got, want)
	}
	// Stage delay calibration: 4 × Td0 ≈ 1.3333 ns.
	if math.Abs(got-1.3333) > 1e-3 {
		t.Errorf("stage delay = %v ns, want ≈1.3333 ns", got)
	}
	if _, err := PathDelay(0.2, path); err == nil {
		t.Error("path delay below threshold accepted")
	}
}

func TestPathDelayEmpty(t *testing.T) {
	got, err := PathDelay(1.2, nil)
	if err != nil || got != 0 {
		t.Errorf("empty path: %v, %v", got, err)
	}
}

func TestDelayMonotoneInShiftProperty(t *testing.T) {
	f := func(hours uint8) bool {
		tr := New("m", NMOS, DefaultParams())
		tp := td.DefaultParams()
		prev, _ := tr.Delay(1.2)
		for i := 0; i < int(hours%20); i++ {
			tr.Stress(tp, 1.2, hot, 1, units.Hour)
			d, err := tr.Delay(1.2)
			if err != nil || d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDelay(b *testing.B) {
	tr := New("m1", NMOS, DefaultParams())
	tr.Stress(td.DefaultParams(), 1.2, hot, 1, 24*units.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Delay(1.2); err != nil {
			b.Fatal(err)
		}
	}
}
