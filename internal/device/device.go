// Package device models the individual transistors that make up the
// FPGA's LUTs, buffers and routing switches: their bias-dependent BTI
// stress detection, their aging state, the first-order propagation-delay
// model of the paper (Eqs. 5–7) and a subthreshold leakage model used by
// the system-level metrics (aging slows circuits *and* — one silver
// lining — reduces leakage as Vth rises).
package device

import (
	"errors"
	"fmt"
	"math"

	"selfheal/internal/td"
	"selfheal/internal/units"
)

// Kind distinguishes the two transistor polarities, which age under
// opposite bias: PMOS suffers NBTI (Vgs < 0), NMOS suffers PBTI
// (Vgs > 0; significant since high-k/metal-gate nodes).
type Kind uint8

const (
	NMOS Kind = iota
	PMOS
)

// String returns "NMOS" or "PMOS".
func (k Kind) String() string {
	if k == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// Params holds the electrical constants of a (40 nm-class) transistor.
type Params struct {
	Vth0 units.Volt // fresh threshold-voltage magnitude
	Vdd  units.Volt // nominal supply
	// Td0 is the transistor's fresh contribution to the propagation
	// delay of the path it sits on, in nanoseconds (Eq. 5 evaluated at
	// the fresh operating point).
	Td0NS float64
	// SubthresholdSwingMV is the subthreshold slope in mV/decade, used
	// by the leakage model. Typical 40 nm value ≈ 90 mV/dec.
	SubthresholdSwingMV float64
	// Ileak0NA is the fresh subthreshold leakage in nanoamps.
	Ileak0NA float64
}

// DefaultParams returns 40 nm-class constants consistent with the
// RO calibration: a 4-transistor path of interest per LUT stage with a
// 1.333 ns stage delay gives the paper's 5 MHz-class 75-stage oscillator.
func DefaultParams() Params {
	return Params{
		Vth0:                0.4,
		Vdd:                 1.2,
		Td0NS:               1.3333 / 4,
		SubthresholdSwingMV: 90,
		Ileak0NA:            10,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.Vth0 <= 0:
		return errors.New("device: Vth0 must be positive")
	case p.Vdd <= p.Vth0:
		return errors.New("device: Vdd must exceed Vth0")
	case p.Td0NS <= 0:
		return errors.New("device: Td0NS must be positive")
	case p.SubthresholdSwingMV <= 0:
		return errors.New("device: subthreshold swing must be positive")
	case p.Ileak0NA < 0:
		return errors.New("device: leakage must be non-negative")
	}
	return nil
}

// Transistor is one device with its aging state. Create with New.
type Transistor struct {
	Name   string
	Kind   Kind
	Params Params
	Aging  td.State
}

// New returns a fresh transistor.
func New(name string, kind Kind, p Params) *Transistor {
	return &Transistor{Name: name, Kind: kind, Params: p}
}

// Stressed reports whether the given gate-source bias puts the device in
// its BTI stress region: Vgs > 0 for NMOS (PBTI), Vgs < 0 for PMOS
// (NBTI). A bias magnitude under half the threshold is treated as
// unstressed — pass transistors conducting a weak-high sit near
// Vgs ≈ Vth and accumulate negligible damage.
func (t *Transistor) Stressed(vgs units.Volt) bool {
	half := t.Params.Vth0 / 2
	switch t.Kind {
	case PMOS:
		return vgs < -half
	default:
		return vgs > half
	}
}

// VthShift returns the current total threshold shift magnitude in volts.
func (t *Transistor) VthShift() float64 { return t.Aging.Vth() }

// Stress ages the device for dt under the given overdrive magnitude and
// temperature with the given duty cycle.
func (t *Transistor) Stress(p td.Params, v units.Volt, temp units.Kelvin, duty float64, dt units.Seconds) {
	t.Aging.Stress(p, td.StressCond{V: abs(v), T: temp, Duty: duty}, dt)
}

// Recover heals the device for dt under the given reverse-bias magnitude
// and temperature.
func (t *Transistor) Recover(p td.Params, vrev units.Volt, temp units.Kelvin, dt units.Seconds) {
	t.Aging.Recover(p, td.RecoveryCond{VRev: abs(vrev), T: temp}, dt)
}

// Delay returns the device's present contribution to path delay in
// nanoseconds at supply vdd, following the paper's first-order model:
//
//	td ∝ CL·Vdd/(Vdd − Vth)                     (Eq. 5)
//	Δtd ≈ td0 · ΔVth/(Vdd − Vth0)               (Eq. 6)
//
// so Delay = Td0·(1 + ΔVth/(Vdd − Vth0)), with the fresh Td0 itself
// rescaled when operating at a non-nominal supply.
func (t *Transistor) Delay(vdd units.Volt) (float64, error) {
	if vdd <= t.Params.Vth0 {
		return 0, fmt.Errorf("device %s: supply %v at or below threshold %v, no switching",
			t.Name, vdd, t.Params.Vth0)
	}
	od0 := float64(t.Params.Vdd - t.Params.Vth0)
	od := float64(vdd - t.Params.Vth0)
	// Fresh delay rescaled to the operating supply (td ∝ Vdd/(Vdd−Vth)).
	fresh := t.Params.Td0NS * (float64(vdd) / float64(t.Params.Vdd)) * (od0 / od)
	return fresh * (1 + t.Aging.Vth()/od), nil
}

// DelayShift returns Δtd in nanoseconds at the nominal supply (Eq. 6).
func (t *Transistor) DelayShift() float64 {
	return t.Params.Td0NS * t.Aging.Vth() / float64(t.Params.Vdd-t.Params.Vth0)
}

// Leakage returns the present subthreshold leakage in nanoamps:
// Isub ∝ 10^(−ΔVth/S). Aging reduces leakage — the one metric BTI
// improves — which the multi-core energy accounting credits.
func (t *Transistor) Leakage() float64 {
	s := t.Params.SubthresholdSwingMV / 1000 // V per decade
	return t.Params.Ileak0NA * math.Pow(10, -t.Aging.Vth()/s)
}

// Reset restores the fresh state.
func (t *Transistor) Reset() { t.Aging.Reset() }

func abs(v units.Volt) units.Volt {
	if v < 0 {
		return -v
	}
	return v
}

// PathDelay sums the Delay of every transistor in the slice at supply
// vdd — the paper's Eq. 7: ΔTd = Σ Δtd over the path of interest.
func PathDelay(vdd units.Volt, path []*Transistor) (float64, error) {
	total := 0.0
	for _, tr := range path {
		d, err := tr.Delay(vdd)
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total, nil
}
