package exp

import (
	"fmt"

	"selfheal/internal/multicore"
	"selfheal/internal/units"
)

// Figure10 quantifies the multi-core self-healing illustration: an
// eight-core system (2×4 floorplan, shared L3) delivering six cores of
// throughput for 30 days under three schedulers — static affinity,
// gating-only round-robin, and the paper's circadian scheduler whose
// sleeping cores apply the negative rail while their active neighbours
// serve as on-chip heaters.
func Figure10() (TableArtifact, error) {
	const (
		demand = 6
		days   = 30
		slotH  = 6
	)
	schedulers := []multicore.Scheduler{
		multicore.Static{}, multicore.RoundRobin{}, multicore.Circadian{},
	}
	rows := make([][]string, 0, len(schedulers))
	var staticWorst float64
	for i, sch := range schedulers {
		sys, err := multicore.New(multicore.DefaultParams())
		if err != nil {
			return TableArtifact{}, err
		}
		out, err := sys.Run(sch, demand, days*24/slotH, slotH*units.Hour)
		if err != nil {
			return TableArtifact{}, err
		}
		if i == 0 {
			staticWorst = out.WorstPct
		}
		relaxed := (1 - out.WorstPct/staticWorst) * 100
		rows = append(rows, []string{
			out.Scheduler,
			fmt.Sprintf("%.4f", out.WorstPct),
			fmt.Sprintf("%.4f", out.MeanPct),
			fmt.Sprintf("%.4f", out.SpreadPct),
			fmt.Sprintf("%d", out.HealSlots),
			fmt.Sprintf("%.2f", out.EnergyWh/1000),
			fmt.Sprintf("%.1f", relaxed),
		})
	}
	return TableArtifact{
		ID:      "Figure 10",
		Caption: "Multi-core self-healing: 8 cores, demand 6, 30 days (worst-core margin sets the clock)",
		Header:  []string{"Scheduler", "Worst core (%)", "Mean (%)", "Spread (%)", "Heal core-slots", "Energy (kWh)", "Margin relaxed vs static (%)"},
		Rows:    rows,
		Notes: []string{
			"circadian = rotate the most-aged cores into sleep with the −0.3 V rail; busy neighbours heat them (Fig. 10)",
			"identical delivered throughput (6 cores × every slot) across all three schedulers",
		},
	}, nil
}
