package exp

import (
	"strings"

	"selfheal/internal/plot"
	"selfheal/internal/series"
)

// Figure is a renderable chart artifact: the series behind one of the
// paper's figures (or one panel of a multi-panel figure).
type Figure struct {
	ID      string // e.g. "Figure 6a"
	Caption string
	Series  []*series.Series
	Notes   []string
}

// Render draws the figure as an ASCII chart with caption and notes.
func (f Figure) Render() string {
	var b strings.Builder
	b.WriteString(plot.Lines(f.ID+" — "+f.Caption, 64, 16, f.Series...))
	for _, n := range f.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	return b.String()
}

// TableArtifact is a renderable table artifact mirroring one of the
// paper's tables.
type TableArtifact struct {
	ID      string
	Caption string
	Header  []string
	Rows    [][]string
	Notes   []string
}

// Render draws the table with caption and notes.
func (t TableArtifact) Render() string {
	var b strings.Builder
	b.WriteString(plot.Table(t.ID+" — "+t.Caption, t.Header, t.Rows))
	for _, n := range t.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	return b.String()
}
