package exp

import (
	"fmt"

	"selfheal/internal/fit"
	"selfheal/internal/measure"
	"selfheal/internal/rng"
	"selfheal/internal/series"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

// Figure1 regenerates the paper's behavioural illustration of stress
// and recovery: the device-level ΔVth trajectory through one stress
// phase (0…t1) and one sleep phase (t1…t1+t2), directly from the TD
// model closed forms.
func Figure1() Figure {
	p := td.DefaultParams()
	sc := td.StressCond{V: 1.2, T: units.Celsius(110).Kelvin(), Duty: 1}
	rc := td.RecoveryCond{VRev: 0.3, T: units.Celsius(110).Kelvin()}
	t1 := 24 * units.Hour
	t2 := 6 * units.Hour

	s := series.New("ΔVth (V)")
	var state td.State
	const steps = 96
	s.Add(0, 0)
	for i := 0; i < steps; i++ {
		state.Stress(p, sc, t1/steps)
		s.Add(t1*units.Seconds(float64(i+1)/steps), state.Vth())
	}
	for i := 0; i < steps/4; i++ {
		state.Recover(p, rc, t2/(steps/4))
		s.Add(t1+t2*units.Seconds(float64(i+1)/(steps/4)), state.Vth())
	}
	return Figure{
		ID:      "Figure 1",
		Caption: "Behavioral illustration of stress and recovery",
		Series:  []*series.Series{s},
		Notes: []string{
			"stress 24 h at 110 °C/1.2 V, then accelerated sleep 6 h at 110 °C/−0.3 V",
			fmt.Sprintf("ΔVth(t1) = %.4f V, ΔVth(t1+t2) = %.4f V — the unrecovered part carries into the next stress phase",
				mustAt(s, t1), state.Vth()),
		},
	}
}

func mustAt(s *series.Series, t units.Seconds) float64 {
	v, err := s.At(t)
	if err != nil {
		panic(err)
	}
	return v
}

// Figure4 regenerates the AC vs DC stress comparison: frequency
// degradation over 24 h at 110 °C for the oscillating (chip 1) and
// frozen (chip 2) CUTs.
func (l *Lab) Figure4() (Figure, error) {
	ac, err := l.Get(AS110AC24, 1)
	if err != nil {
		return Figure{}, err
	}
	dc, err := l.Get(AS110DC24, 2)
	if err != nil {
		return Figure{}, err
	}
	acPct, _ := ac.DegradationPctSeries("AC stress").Last()
	dcPct, _ := dc.DegradationPctSeries("DC stress").Last()
	return Figure{
		ID:      "Figure 4",
		Caption: "AC/DC stress test results (frequency degradation %, 24 h @ 110 °C)",
		Series: []*series.Series{
			ac.DegradationPctSeries("AC stress"),
			dc.DegradationPctSeries("DC stress"),
		},
		Notes: []string{
			fmt.Sprintf("final degradation: AC %.2f %%, DC %.2f %% (AC/DC = %.2f; paper: ≈half)",
				acPct.V, dcPct.V, acPct.V/dcPct.V),
			"AC stress is a partially self-healing process: recovery phases interleave with stress due to switching",
		},
	}, nil
}

// Figure5 regenerates accelerated wearout at 100 °C and 110 °C over one
// day: measured ΔTd plus the extracted first-order model overlay
// (Eq. 10 fitted per condition — the fits also feed Table 3).
func (l *Lab) Figure5() (Figure, error) {
	hot, err := l.Get(AS110DC24, 2)
	if err != nil {
		return Figure{}, err
	}
	warm, err := l.Get(AS100DC24, 4)
	if err != nil {
		return Figure{}, err
	}
	out := Figure{
		ID:      "Figure 5",
		Caption: "Accelerated wearout at 110 °C and 100 °C for 1 day (ΔTd, ns)",
	}
	for _, r := range []struct {
		run   *Run
		label string
	}{{hot, "110°C"}, {warm, "100°C"}} {
		meas := r.run.DegradationSeries(r.label + " measurement")
		params, err := fit.ExtractWearout(meas)
		if err != nil {
			return Figure{}, fmt.Errorf("exp: fitting %s: %w", r.label, err)
		}
		model := series.FromFunc(r.label+" model", units.HoursToSeconds(r.run.Case.Hours), 48,
			func(t units.Seconds) float64 {
				return fit.WearoutModel(float64(t), []float64{params.BetaNS, params.CPerS})
			})
		out.Series = append(out.Series, meas, model)
		out.Notes = append(out.Notes, fmt.Sprintf(
			"%s fit: β = %.3f ns, C = %.2e 1/s, R² = %.4f", r.label, params.BetaNS, params.CPerS, params.R2))
	}
	return out, nil
}

// recoveryRunSet lists the four single-shot recovery cases in the order
// the paper's Fig. 8 legend uses (strongest first).
func (l *Lab) recoveryRunSet() ([]*Run, error) {
	ids := []struct {
		id   CaseID
		chip int
	}{
		{AR110N6, 5}, {AR110Z6, 4}, {AR20N6, 3}, {R20Z6, 2},
	}
	runs := make([]*Run, len(ids))
	for i, x := range ids {
		r, err := l.Get(x.id, x.chip)
		if err != nil {
			return nil, err
		}
		runs[i] = r
	}
	return runs, nil
}

// recoveredWithModel builds the measured RD(t2) series and its fitted
// model overlay for one recovery run.
func recoveredWithModel(r *Run, label string) (*series.Series, *series.Series, fit.RecoveryParams, error) {
	meas := r.RecoveredDelaySeries(label)
	t1 := float64(units.HoursToSeconds(24))
	if r.Case.ID == AR110N12 {
		t1 = float64(units.HoursToSeconds(48))
	}
	params, err := fit.ExtractRecovery(meas, t1)
	if err != nil {
		return nil, nil, fit.RecoveryParams{}, fmt.Errorf("exp: fitting %s: %w", label, err)
	}
	model := series.FromFunc(label+" model", units.HoursToSeconds(r.Case.Hours), 48,
		func(t units.Seconds) float64 {
			return fit.RecoveryModel(t1)(float64(t), []float64{params.AmpNS, params.CPerS})
		})
	return meas, model, params, nil
}

// Figure6 regenerates recovery grouped by temperature: panel (a) at
// 20 °C (0 V vs −0.3 V), panel (b) at 110 °C (0 V vs −0.3 V), recovered
// delay vs sleep time with model overlays.
func (l *Lab) Figure6() ([2]Figure, error) {
	return l.recoveryPanels("Figure 6", [2][2]key{
		{{R20Z6, 2}, {AR20N6, 3}},    // panel a: 20 °C
		{{AR110Z6, 4}, {AR110N6, 5}}, // panel b: 110 °C
	}, [2]string{
		"Recover at 20 °C: 0 V vs −0.3 V (RD, ns)",
		"Recover at 110 °C: 0 V vs −0.3 V (RD, ns)",
	}, [2][2]string{
		{"20°C 0V", "20°C -0.3V"},
		{"110°C 0V", "110°C -0.3V"},
	})
}

// Figure7 regenerates recovery grouped by voltage: panel (a) at 0 V
// (20 °C vs 110 °C), panel (b) at −0.3 V (20 °C vs 110 °C).
func (l *Lab) Figure7() ([2]Figure, error) {
	return l.recoveryPanels("Figure 7", [2][2]key{
		{{R20Z6, 2}, {AR110Z6, 4}},  // panel a: 0 V
		{{AR20N6, 3}, {AR110N6, 5}}, // panel b: −0.3 V
	}, [2]string{
		"Recover under 0 V: 20 °C vs 110 °C (RD, ns)",
		"Recover under −0.3 V: 20 °C vs 110 °C (RD, ns)",
	}, [2][2]string{
		{"0V 20°C", "0V 110°C"},
		{"-0.3V 20°C", "-0.3V 110°C"},
	})
}

func (l *Lab) recoveryPanels(figID string, panels [2][2]key, captions [2]string, labels [2][2]string) ([2]Figure, error) {
	var out [2]Figure
	for p := 0; p < 2; p++ {
		fig := Figure{
			ID:      fmt.Sprintf("%s%c", figID, 'a'+p),
			Caption: captions[p],
		}
		for i, k := range panels[p] {
			r, err := l.Get(k.id, k.chip)
			if err != nil {
				return out, err
			}
			meas, model, params, err := recoveredWithModel(r, labels[p][i])
			if err != nil {
				return out, err
			}
			fig.Series = append(fig.Series, meas, model)
			last, _ := meas.Last()
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"%s: RD(%gh) = %.2f ns (model R² = %.3f)", labels[p][i], r.Case.Hours, last.V, params.R2))
		}
		out[p] = fig
	}
	return out, nil
}

// Figure8 regenerates the combined view: the remaining delay change
// ΔTd (relative to fresh) during recovery for all four conditions plus
// their model curves — the paper's "delay change over time during
// recovery".
func (l *Lab) Figure8() (Figure, error) {
	runs, err := l.recoveryRunSet()
	if err != nil {
		return Figure{}, err
	}
	labels := []string{"110°C and -0.3V", "110°C and 0V", "20°C and -0.3V", "20°C and 0V"}
	fig := Figure{
		ID:      "Figure 8",
		Caption: "Delay change over time during recovery (ΔTd vs fresh, ns)",
	}
	for i, r := range runs {
		meas := r.DegradationSeries(labels[i])
		// Model: ΔTd(t2) = ΔTd(start) − RD_model(t2).
		_, rdModel, _, err := recoveredWithModel(r, labels[i])
		if err != nil {
			return Figure{}, err
		}
		start := r.StartNS - r.FreshNS
		model := rdModel.Map("Model("+labels[i]+")", func(v float64) float64 { return start - v })
		fig.Series = append(fig.Series, meas, model)
	}
	fig.Notes = append(fig.Notes,
		"ordering matches the paper: 110 °C ∧ −0.3 V heals deepest; 20 °C ∧ 0 V (passive) shallowest")
	return fig, nil
}

// Figure9 simulates the long-horizon comparison the paper illustrates:
// continuous wearout versus the proposed schedule of wearout plus
// accelerated recovery at α = 4 (24 h active / 6 h sleep at 110 °C and
// −0.3 V), over several weeks.
func (l *Lab) Figure9() (Figure, error) {
	const cycles = 8
	mk := func(chip int) (*measure.Bench, float64, error) {
		b, err := measure.NewBench(fmt.Sprintf("Fig9Chip%d", chip), l.Params,
			rng.New(l.Seed+0xf19*uint64(chip)))
		if err != nil {
			return nil, 0, err
		}
		m, err := b.Sample()
		if err != nil {
			return nil, 0, err
		}
		return b, m.DelayNS, nil
	}

	contBench, contFresh, err := mk(1)
	if err != nil {
		return Figure{}, err
	}
	cont := series.New("continuous wearout")
	cont.Add(0, 0)
	for c := 0; c < cycles; c++ {
		s, err := contBench.RunPhase(measure.PhaseSpec{
			Name: "stress", Kind: measure.Stress, Duration: 30 * units.Hour,
			TempC: 110, Vdd: 1.2, FrozenIn0: true, SampleEvery: 2 * units.Hour,
		})
		if err != nil {
			return Figure{}, err
		}
		base := units.Seconds(c) * 30 * units.Hour
		for _, p := range s.Points {
			if p.T > 0 {
				cont.Add(base+p.T, p.V-contFresh)
			}
		}
	}

	cycBench, cycFresh, err := mk(2)
	if err != nil {
		return Figure{}, err
	}
	cyc := series.New("wearout + accelerated recovery (α=4)")
	cyc.Add(0, 0)
	now := units.Seconds(0)
	for c := 0; c < cycles; c++ {
		s, err := cycBench.RunPhase(measure.PhaseSpec{
			Name: "stress", Kind: measure.Stress, Duration: 24 * units.Hour,
			TempC: 110, Vdd: 1.2, FrozenIn0: true, SampleEvery: 2 * units.Hour,
		})
		if err != nil {
			return Figure{}, err
		}
		for _, p := range s.Points {
			if p.T > 0 {
				cyc.Add(now+p.T, p.V-cycFresh)
			}
		}
		now += 24 * units.Hour
		s, err = cycBench.RunPhase(measure.PhaseSpec{
			Name: "sleep", Kind: measure.Recovery, Duration: 6 * units.Hour,
			TempC: 110, Vdd: -0.3, SampleEvery: units.Hour,
		})
		if err != nil {
			return Figure{}, err
		}
		for _, p := range s.Points {
			if p.T > 0 {
				cyc.Add(now+p.T, p.V-cycFresh)
			}
		}
		now += 6 * units.Hour
	}

	contLast, _ := cont.Last()
	cycLast, _ := cyc.Last()
	return Figure{
		ID:      "Figure 9",
		Caption: "Wearout vs accelerated recovery over repeated cycles (ΔTd, ns)",
		Series:  []*series.Series{cont, cyc},
		Notes: []string{
			fmt.Sprintf("after %d cycles (%.0f h wall time): continuous ΔTd = %.2f ns, rejuvenated ΔTd = %.2f ns",
				cycles, (30 * float64(cycles)), contLast.V, cycLast.V),
			"the rejuvenated chip's envelope is bounded (sawtooth); continuous stress keeps growing logarithmically",
		},
	}, nil
}
