package exp

import (
	"fmt"

	"selfheal/internal/device"
	"selfheal/internal/lutk"
	"selfheal/internal/measure"
	"selfheal/internal/rng"
	"selfheal/internal/sched"
	"selfheal/internal/supply"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

// The extension artifacts go beyond the paper's printed evaluation:
// ablations of the design choices DESIGN.md calls out, the competing
// mitigation the paper cites (GNOMO, refs [12,13]), and the
// LUT-implementation study its ref [18] performs on silicon.

// ExtensionE1 is the LUT-size aging study (ref [18]): inverter-mapped
// k-input LUTs under identical 24 h / 110 °C stress, DC and AC.
func ExtensionE1() (TableArtifact, error) {
	tp := td.DefaultParams()
	hot := units.Celsius(110).Kelvin()
	rows := [][]string{}
	run := func(k int, ac bool) (float64, error) {
		l, err := lutk.New(fmt.Sprintf("E1K%d", k), k, device.DefaultParams())
		if err != nil {
			return 0, err
		}
		l.ConfigureInverter()
		osc := lutk.InverterACPhase(k)
		fresh, err := l.MeasuredDelay(1.2, osc)
		if err != nil {
			return 0, err
		}
		activity := lutk.InverterDCPhase(k, true)
		if ac {
			activity = osc
		}
		duties, err := l.StressDuties(activity)
		if err != nil {
			return 0, err
		}
		for i, tr := range l.Transistors() {
			if duties[i] > 0 {
				tr.Stress(tp, 1.2, hot, duties[i], 24*units.Hour)
			}
		}
		aged, err := l.MeasuredDelay(1.2, osc)
		if err != nil {
			return 0, err
		}
		return (aged - fresh) / fresh * 100, nil
	}
	for _, k := range []int{2, 3, 4, 5, 6} {
		dc, err := run(k, false)
		if err != nil {
			return TableArtifact{}, err
		}
		ac, err := run(k, true)
		if err != nil {
			return TableArtifact{}, err
		}
		l, _ := lutk.New("count", k, device.DefaultParams())
		rows = append(rows, []string{
			fmt.Sprintf("LUT%d", k),
			fmt.Sprintf("%d", l.TransistorCount()),
			fmt.Sprintf("%d", k+2),
			fmt.Sprintf("%.3f", dc),
			fmt.Sprintf("%.3f", ac),
			fmt.Sprintf("%.2f", ac/dc),
		})
	}
	return TableArtifact{
		ID:      "Extension E1",
		Caption: "LUT-size aging study (after the paper's ref [18]): 24 h @ 110 °C per cell",
		Header:  []string{"Cell", "Transistors", "POI depth", "DC deg (%)", "AC deg (%)", "AC/DC"},
		Rows:    rows,
		Notes: []string{
			"DC relative degradation is k-invariant: each extra mux level adds one stressed on-path device and one unit of fresh depth",
			"AC degradation grows with k: statically selected lower levels stay under DC stress (config cells never toggle)",
		},
	}, nil
}

// ExtensionE2 compares the paper's proposal against the mitigation it
// cites as prior art: GNOMO (greater-than-nominal Vdd operation,
// refs [12,13]) and plain power gating, at identical delivered work.
func ExtensionE2() (TableArtifact, error) {
	const (
		days     = 30
		workFrac = 0.8  // work needs 80 % of wall time at nominal
		overdrvV = 1.32 // GNOMO rail (+10 %)
		vth      = 0.4
	)
	base := sched.DefaultConfig()
	base.Horizon = days * units.Day
	base.Slot = units.Hour

	// Frequency speedup at the boosted rail (paper Eq. 5 shape).
	speedup := ((overdrvV - vth) / overdrvV) / ((float64(base.ActiveVdd) - vth) / float64(base.ActiveVdd))
	gnomoActive := workFrac / speedup
	gnomoAlpha := gnomoActive / (1 - gnomoActive)

	type variant struct {
		label   string
		cfg     sched.Config
		policy  sched.Policy
		energy  float64 // dynamic energy per work item, relative
		railTxt string
	}
	alpha := workFrac / (1 - workFrac)
	variants := []variant{
		{
			label:   "always-on (idle at nominal)",
			cfg:     base,
			policy:  sched.NoRecovery{},
			energy:  1,
			railTxt: "1.2 V",
		},
		{
			label:   "power gating (slack gated)",
			cfg:     base,
			policy:  sched.Proactive{Alpha: alpha, SleepLen: 6 * units.Hour, Cond: sched.PassiveSleep()},
			energy:  1,
			railTxt: "1.2 V",
		},
		{
			label: "GNOMO (+10 % Vdd, slack gated)",
			cfg: func() sched.Config {
				c := base
				c.ActiveVdd = overdrvV
				return c
			}(),
			policy:  sched.Proactive{Alpha: gnomoAlpha, SleepLen: 6 * units.Hour, Cond: sched.PassiveSleep()},
			energy:  (overdrvV / 1.2) * (overdrvV / 1.2),
			railTxt: "1.32 V",
		},
		{
			label:   "accelerated self-healing (this paper)",
			cfg:     base,
			policy:  sched.Proactive{Alpha: alpha, SleepLen: 6 * units.Hour, Cond: sched.AcceleratedSleep()},
			energy:  1,
			railTxt: "1.2 V / −0.3 V sleep",
		},
	}
	rows := make([][]string, 0, len(variants))
	for _, v := range variants {
		out, err := sched.Simulate(v.cfg, v.policy)
		if err != nil {
			return TableArtifact{}, fmt.Errorf("exp: E2 %s: %w", v.label, err)
		}
		rows = append(rows, []string{
			v.label,
			v.railTxt,
			fmt.Sprintf("%.1f", out.ActiveFraction*100),
			fmt.Sprintf("%.3f", out.PeakPct),
			fmt.Sprintf("%.3f", out.FinalPct),
			fmt.Sprintf("%.2f", v.energy),
		})
	}
	return TableArtifact{
		ID:      "Extension E2",
		Caption: fmt.Sprintf("Mitigation comparison at equal delivered work (%d days, work = %.0f %% of wall time)", days, workFrac*100),
		Header:  []string{"Mitigation", "Rail", "Active (%)", "Peak deg (%)", "Final deg (%)", "Energy/op (rel)"},
		Rows:    rows,
		Notes: []string{
			"GNOMO buys a little stress-time reduction at a quadratic energy premium; accelerated self-healing heals at nominal energy",
			fmt.Sprintf("GNOMO speedup at +10 %% Vdd: %.3f× (Eq. 5 shape)", speedup),
		},
	}, nil
}

// ExtensionE3 sweeps the active:sleep ratio α: 24 h of accelerated
// stress followed by 24/α hours of combined-condition sleep. The
// paper fixes α = 4; the sweep shows what that choice buys and what
// longer sleeping would add.
func (l *Lab) ExtensionE3() (TableArtifact, error) {
	rows := [][]string{}
	for _, alpha := range []float64{1, 2, 4, 8, 16} {
		b, err := measure.NewBench(fmt.Sprintf("E3a%g", alpha), l.Params,
			rng.New(l.Seed+uint64(alpha*1000)))
		if err != nil {
			return TableArtifact{}, err
		}
		fresh, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "stress", Kind: measure.Stress, Duration: 24 * units.Hour,
			TempC: 110, Vdd: 1.2, FrozenIn0: true,
		}); err != nil {
			return TableArtifact{}, err
		}
		stressed, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		sleepH := 24 / alpha
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "sleep", Kind: measure.Recovery, Duration: units.HoursToSeconds(sleepH),
			TempC: 110, Vdd: -0.3,
		}); err != nil {
			return TableArtifact{}, err
		}
		healed, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		relaxed, err := measure.MarginRelaxedPct(fresh.DelayNS, stressed.DelayNS, healed.DelayNS)
		if err != nil {
			return TableArtifact{}, err
		}
		remaining, err := measure.RemainingMarginPct(fresh.DelayNS, healed.DelayNS, measure.DefaultMarginFrac)
		if err != nil {
			return TableArtifact{}, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", alpha),
			fmt.Sprintf("%.1f h", sleepH),
			fmt.Sprintf("%.1f", alpha/(alpha+1)*100),
			fmt.Sprintf("%.1f", relaxed),
			fmt.Sprintf("%.1f", remaining),
		})
	}
	return TableArtifact{
		ID:      "Extension E3",
		Caption: "Active:sleep ratio sweep (24 h stress @ 110 °C, sleep @ 110 °C / −0.3 V)",
		Header:  []string{"α", "Sleep", "Throughput (%)", "Margin relaxed (%)", "Remaining margin (%)"},
		Rows:    rows,
		Notes: []string{
			"recovery is front-loaded: α = 4 already captures most of what α = 1 would — the paper's choice sits at the knee",
		},
	}, nil
}

// ExtensionE4 sweeps the negative-rail magnitude during a 6 h / 110 °C
// sleep and joins each point with the Section 6.1 on-chip feasibility
// verdict: deeper rails heal faster but blow the GIDL and breakdown
// budgets.
func (l *Lab) ExtensionE4() (TableArtifact, error) {
	feas := supply.DefaultNegVGenParams()
	rows := [][]string{}
	for _, rail := range []units.Volt{0, -0.1, -0.2, -0.3, -0.4, -0.5} {
		b, err := measure.NewBench(fmt.Sprintf("E4v%g", rail), l.Params,
			rng.New(l.Seed^uint64(1000-rail*1000)))
		if err != nil {
			return TableArtifact{}, err
		}
		fresh, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "stress", Kind: measure.Stress, Duration: 24 * units.Hour,
			TempC: 110, Vdd: 1.2, FrozenIn0: true,
		}); err != nil {
			return TableArtifact{}, err
		}
		stressed, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "sleep", Kind: measure.Recovery, Duration: 6 * units.Hour,
			TempC: 110, Vdd: rail,
		}); err != nil {
			return TableArtifact{}, err
		}
		healed, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		relaxed, err := measure.MarginRelaxedPct(fresh.DelayNS, stressed.DelayNS, healed.DelayNS)
		if err != nil {
			return TableArtifact{}, err
		}
		verdict := "n/a (gated)"
		if rail < 0 {
			f, err := supply.CheckNegativeRail(feas, rail)
			if err != nil {
				return TableArtifact{}, err
			}
			if f.OK {
				verdict = fmt.Sprintf("ok (GIDL %.0f nA)", f.GIDLNAPerCell)
			} else {
				verdict = "infeasible: " + f.Reasons[0]
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g V", float64(rail)),
			fmt.Sprintf("%.1f", relaxed),
			verdict,
		})
	}
	return TableArtifact{
		ID:      "Extension E4",
		Caption: "Negative-rail sweep (6 h sleep @ 110 °C after 24 h stress) with §6.1 on-chip feasibility",
		Header:  []string{"Sleep rail", "Margin relaxed (%)", "On-chip feasibility"},
		Rows:    rows,
		Notes: []string{
			"the paper's −0.3 V clears the GIDL and breakdown budgets with headroom (−0.4 V is marginal, −0.5 V infeasible) — \"a modest negative voltage can be enough\"",
		},
	}, nil
}

// Extensions returns all extension artifacts.
func (l *Lab) Extensions() ([]TableArtifact, error) {
	e1, err := ExtensionE1()
	if err != nil {
		return nil, err
	}
	e2, err := ExtensionE2()
	if err != nil {
		return nil, err
	}
	e3, err := l.ExtensionE3()
	if err != nil {
		return nil, err
	}
	e4, err := l.ExtensionE4()
	if err != nil {
		return nil, err
	}
	e5, err := l.ExtensionE5()
	if err != nil {
		return nil, err
	}
	e6, err := l.ExtensionE6()
	if err != nil {
		return nil, err
	}
	e7, err := ExtensionE7()
	if err != nil {
		return nil, err
	}
	e8, err := ExtensionE8()
	if err != nil {
		return nil, err
	}
	e9, err := ExtensionE9()
	if err != nil {
		return nil, err
	}
	e10, err := l.ExtensionE10()
	if err != nil {
		return nil, err
	}
	e11, err := l.ExtensionE11()
	if err != nil {
		return nil, err
	}
	e12, err := l.ExtensionE12()
	if err != nil {
		return nil, err
	}
	return []TableArtifact{e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12}, nil
}
