package exp

import (
	"fmt"

	"selfheal/internal/em"
	"selfheal/internal/measure"
	"selfheal/internal/rng"
	"selfheal/internal/sram"
	"selfheal/internal/stats"

	"selfheal/internal/td"
	"selfheal/internal/units"
)

// ExtensionE8 applies accelerated self-healing to cache SRAM — the
// system of the paper's ref [14] (Shin et al., ISCA'08): an 8-way data
// array holding zero-skewed contents at 85 °C for 90 days under four
// maintenance policies. The metric is static noise margin (SNM), whose
// loss has an asymmetry term (whichever pull-up faces the stored zero
// ages) and a common-mode term; bit-flipping attacks the former,
// way-rotation onto an accelerated island the latter.
func ExtensionE8() (TableArtifact, error) {
	p := sram.DefaultArrayParams()
	outs, err := sram.Compare(p, 90, 6*units.Hour, 2014)
	if err != nil {
		return TableArtifact{}, err
	}
	rows := make([][]string, 0, len(outs))
	for _, o := range outs {
		rows = append(rows, []string{
			o.Policy,
			fmt.Sprintf("%.1f", o.MinSNMMV),
			fmt.Sprintf("%.1f", o.MeanSNMMV),
			fmt.Sprintf("%.1f", o.MarginConsumedPct),
			fmt.Sprintf("%d", o.FailingCells),
		})
	}
	return TableArtifact{
		ID: "Extension E8",
		Caption: fmt.Sprintf("Cache-SRAM self-healing (ref [14]): %d ways × %d cells, %g-biased data, 90 days @ %g °C",
			p.Ways, p.CellsPerWay, p.OneBias, float64(p.TempC)),
		Header: []string{"Policy", "Min SNM (mV)", "Mean SNM (mV)", "Margin consumed (%)", "Failing cells"},
		Rows:   rows,
		Notes: []string{
			"bit-flip balances which pull-up ages; island rotation heals both; flip+recover combines them and has the best average SNM",
			"combining exposes a genuine transient: a freshly healed way re-skews quickly on re-stress (TD fast component), so flip alone holds the tightest worst case at day granularity",
		},
	}, nil
}

// ExtensionE9 quantifies the paper's Section 7 limitation: the
// first-order model "ignores other aging effects, such as EM".
// Electromigration damage never heals — sleep only pauses it — so over
// a product lifetime the margin-relaxed parameter of the α = 4
// accelerated schedule decays from its BTI-dominated ≈70 % toward the
// duty-cycling floor of ≈20 % (1 − α/(α+1)) as EM takes over the delay
// budget.
func ExtensionE9() (TableArtifact, error) {
	const (
		freshNS    = 100.0 // lumped path
		gainNSPerV = 54.7  // BTI path gain (RO calibration)
		emWeight   = 0.4   // interconnect share of path delay
		jActive    = 1.6   // MA/cm² under load
	)
	tdp := td.DefaultParams()
	emp := em.DefaultParams()
	hotActive := units.Celsius(85).Kelvin()
	sleepHot := units.Celsius(110).Kelvin()

	type chipState struct {
		bti  td.State
		line em.Line
	}
	delay := func(c *chipState) float64 {
		return freshNS + gainNSPerV*c.bti.Vth() + freshNS*emWeight*c.line.DeltaRFrac(emp)
	}
	var healed, baseline chipState

	stressCond := td.StressCond{V: 1.2, T: hotActive, Duty: 0.5}
	recovCond := td.RecoveryCond{VRev: 0.3, T: sleepHot}

	checkpoints := map[int]bool{30: true, 180: true, 365: true, 730: true, 1460: true}
	rows := [][]string{}
	for day := 1; day <= 1460; day++ {
		// Baseline runs 30 h of work per 30 h; the healed chip works
		// 24 h then sleeps 6 h (identical throughput per wall-clock is
		// not the comparison here — the paper compares margin at equal
		// *work*, so the baseline also works 24 h then idles powered).
		baseline.bti.Stress(tdp, stressCond, 24*units.Hour)
		baseline.line.Age(emp, jActive, hotActive, 24*units.Hour)
		baseline.bti.Stress(tdp, stressCond, 6*units.Hour)
		baseline.line.Age(emp, jActive, hotActive, 6*units.Hour)

		healed.bti.Stress(tdp, stressCond, 24*units.Hour)
		healed.line.Age(emp, jActive, hotActive, 24*units.Hour)
		healed.bti.Recover(tdp, recovCond, 6*units.Hour)
		// Sleep pauses EM (no current), heals nothing.

		if checkpoints[day] {
			dBase := delay(&baseline) - freshNS
			dHealed := delay(&healed) - freshNS
			emShare := freshNS * emWeight * healed.line.DeltaRFrac(emp) / dHealed * 100
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", float64(day)/365.25*12),
				fmt.Sprintf("%.3f", dBase),
				fmt.Sprintf("%.3f", dHealed),
				fmt.Sprintf("%.1f", emShare),
				fmt.Sprintf("%.1f", (1-dHealed/dBase)*100),
			})
		}
	}
	return TableArtifact{
		ID:      "Extension E9",
		Caption: "Limits of self-healing under electromigration (§7 limitation): α = 4 schedule vs idle-powered baseline",
		Header:  []string{"Months", "Baseline ΔTd (ns)", "Healed ΔTd (ns)", "EM share of healed ΔTd (%)", "Margin relaxed (%)"},
		Rows:    rows,
		Notes: []string{
			"EM damage only pauses during sleep (no current) — it never recovers, so it caps the benefit",
			"the margin-relaxed parameter decays from the BTI-dominated ≈70 % toward the duty-cycling floor of 1 − α/(α+1) = 20 % as EM takes over",
		},
	}, nil
}

// ExtensionE10 addresses the paper's other stated limitation: "the
// effects of chip to chip variations on aging are also ignored for
// now". It fabricates a population of chips with full process
// variation (global corner + within-die), runs the AR110N6 experiment
// on each, and reports the distribution of the margin-relaxed
// parameter and of the headline criterion.
func (l *Lab) ExtensionE10() (TableArtifact, error) {
	const population = 25
	relaxed := make([]float64, 0, population)
	remaining := make([]float64, 0, population)
	pass := 0
	for i := 0; i < population; i++ {
		b, err := measure.NewBench(fmt.Sprintf("E10c%d", i), l.Params,
			rng.New(l.Seed*1000003+uint64(i)))
		if err != nil {
			return TableArtifact{}, err
		}
		fresh, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "stress", Kind: measure.Stress, Duration: 24 * units.Hour,
			TempC: 110, Vdd: 1.2, FrozenIn0: true,
		}); err != nil {
			return TableArtifact{}, err
		}
		stressed, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "sleep", Kind: measure.Recovery, Duration: 6 * units.Hour,
			TempC: 110, Vdd: -0.3,
		}); err != nil {
			return TableArtifact{}, err
		}
		healed, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		rel, err := measure.MarginRelaxedPct(fresh.DelayNS, stressed.DelayNS, healed.DelayNS)
		if err != nil {
			return TableArtifact{}, err
		}
		rem, err := measure.RemainingMarginPct(fresh.DelayNS, healed.DelayNS, measure.DefaultMarginFrac)
		if err != nil {
			return TableArtifact{}, err
		}
		ok, err := measure.WithinOriginalMargin(fresh.DelayNS, healed.DelayNS, measure.DefaultMarginFrac, 90)
		if err != nil {
			return TableArtifact{}, err
		}
		if ok {
			pass++
		}
		relaxed = append(relaxed, rel)
		remaining = append(remaining, rem)
	}
	stat := func(xs []float64) (mean, sigma, lo, hi float64) {
		mean, _ = stats.Mean(xs)
		sigma, _ = stats.StdDev(xs)
		lo, hi, _ = stats.MinMax(xs)
		return
	}
	rm, rs, rlo, rhi := stat(relaxed)
	mm, ms, mlo, mhi := stat(remaining)
	rows := [][]string{
		{"margin relaxed (%)", fmt.Sprintf("%.1f", rm), fmt.Sprintf("%.2f", rs),
			fmt.Sprintf("%.1f", rlo), fmt.Sprintf("%.1f", rhi)},
		{"remaining margin (%)", fmt.Sprintf("%.1f", mm), fmt.Sprintf("%.2f", ms),
			fmt.Sprintf("%.1f", mlo), fmt.Sprintf("%.1f", mhi)},
	}
	return TableArtifact{
		ID: "Extension E10",
		Caption: fmt.Sprintf("Chip-to-chip variation study (§7 limitation): AR110N6 across %d varied chips",
			population),
		Header: []string{"Metric", "Mean", "σ", "Min", "Max"},
		Rows:   rows,
		Notes: []string{
			fmt.Sprintf("headline criterion (≥90 %% of original margin): %d/%d chips pass", pass, population),
			"the recovered *fraction* is ratio-metric, so process variation barely moves it — the reason the paper's RD metric makes cross-chip comparison fair",
		},
	}, nil
}
