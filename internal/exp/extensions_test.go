package exp

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestExtensionE1LUTSizeStudy(t *testing.T) {
	ta, err := ExtensionE1()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 5 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	// DC degradation k-invariant (±2 %), AC and AC/DC strictly rising.
	dc0 := cell(t, ta, 0, 3)
	for i := range ta.Rows {
		if dc := cell(t, ta, i, 3); math.Abs(dc-dc0)/dc0 > 0.02 {
			t.Errorf("row %d: DC %.3f not invariant vs %.3f", i, dc, dc0)
		}
		if i == 0 {
			continue
		}
		if cell(t, ta, i, 4) <= cell(t, ta, i-1, 4) {
			t.Errorf("row %d: AC degradation not increasing", i)
		}
		if cell(t, ta, i, 5) <= cell(t, ta, i-1, 5) {
			t.Errorf("row %d: AC/DC ratio not increasing", i)
		}
	}
	// Transistor counts follow 2^(k+1)+1.
	if got := cell(t, ta, 4, 1); got != 129 {
		t.Errorf("LUT6 transistor count = %v", got)
	}
}

func TestExtensionE2MitigationComparison(t *testing.T) {
	ta, err := ExtensionE2()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 4 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	alwaysOn := cell(t, ta, 0, 4)
	gating := cell(t, ta, 1, 4)
	gnomo := cell(t, ta, 2, 4)
	healing := cell(t, ta, 3, 4)
	// Final degradation: self-healing < gating < always-on.
	if !(healing < gating && gating < alwaysOn) {
		t.Errorf("final ordering wrong: healing %v, gating %v, always-on %v",
			healing, gating, alwaysOn)
	}
	// Self-healing also beats GNOMO at equal energy.
	if healing >= gnomo {
		t.Errorf("self-healing %v not below GNOMO %v", healing, gnomo)
	}
	// GNOMO pays the quadratic energy premium.
	if e := cell(t, ta, 2, 5); math.Abs(e-1.21) > 0.01 {
		t.Errorf("GNOMO energy = %v, want 1.21", e)
	}
	// GNOMO's boosted rail buys some active time back.
	if cell(t, ta, 2, 2) >= cell(t, ta, 1, 2) {
		t.Error("GNOMO not faster than nominal gating")
	}
}

func TestExtensionE3AlphaSweep(t *testing.T) {
	ta, err := lab(t).ExtensionE3()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 5 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	// Margin relaxed decreases as α grows (less sleep), and the
	// paper's α = 4 still exceeds 70 %.
	for i := 1; i < len(ta.Rows); i++ {
		if cell(t, ta, i, 3) >= cell(t, ta, i-1, 3) {
			t.Errorf("row %d: margin relaxed not decreasing in α", i)
		}
	}
	if a4 := cell(t, ta, 2, 3); a4 < 70 {
		t.Errorf("α=4 margin relaxed = %v, want ≥70", a4)
	}
	// Front-loading: going from α=4 to α=1 (4× more sleep) buys less
	// than 15 extra points.
	if gain := cell(t, ta, 0, 3) - cell(t, ta, 2, 3); gain > 15 {
		t.Errorf("α=1 gain over α=4 = %.1f points — sweep not front-loaded", gain)
	}
}

func TestExtensionE4RailSweep(t *testing.T) {
	ta, err := lab(t).ExtensionE4()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 6 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	for i := 1; i < len(ta.Rows); i++ {
		if cell(t, ta, i, 1) <= cell(t, ta, i-1, 1) {
			t.Errorf("row %d: margin relaxed not increasing with rail depth", i)
		}
	}
	// −0.3 V feasible, −0.5 V not.
	if !strings.HasPrefix(ta.Rows[3][2], "ok") {
		t.Errorf("-0.3 V verdict: %q", ta.Rows[3][2])
	}
	if !strings.HasPrefix(ta.Rows[5][2], "infeasible") {
		t.Errorf("-0.5 V verdict: %q", ta.Rows[5][2])
	}
	if ta.Rows[0][2] != "n/a (gated)" {
		t.Errorf("0 V verdict: %q", ta.Rows[0][2])
	}
}

func TestExtensionE5MonitorResolution(t *testing.T) {
	ta, err := lab(t).ExtensionE5()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 4 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	parse := func(cellStr string) (mean, sigma float64) {
		if _, err := fmt.Sscanf(cellStr, "%f ± %f", &mean, &sigma); err != nil {
			t.Fatalf("unparsable cell %q: %v", cellStr, err)
		}
		return
	}
	for i, row := range ta.Rows {
		_, ctrSigma := parse(row[1])
		odoMean, odoSigma := parse(row[2])
		// The odometer's scatter must sit far below the counter's
		// quantization-dominated noise.
		if odoSigma >= ctrSigma/10 {
			t.Errorf("row %d: odometer σ %.1f not ≪ counter σ %.1f", i, odoSigma, ctrSigma)
		}
		if i > 0 {
			prevMean, _ := parse(ta.Rows[i-1][2])
			if odoMean <= prevMean {
				t.Errorf("row %d: odometer mean not increasing with stress", i)
			}
		}
	}
}

func TestExtensionE6WorkloadAging(t *testing.T) {
	ta, err := lab(t).ExtensionE6()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 3 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	// Ordering: idle (DC) worst, uniform (most switching) least.
	idle := cell(t, ta, 0, 2)
	low := cell(t, ta, 1, 2)
	uniform := cell(t, ta, 2, 2)
	if !(idle > low && low > uniform) {
		t.Errorf("workload ordering wrong: idle %v, low %v, uniform %v", idle, low, uniform)
	}
	// Every workload heals most of its damage.
	for i := range ta.Rows {
		if relaxed := cell(t, ta, i, 4); relaxed < 60 {
			t.Errorf("row %d: margin relaxed %v < 60 %%", i, relaxed)
		}
		if healed := cell(t, ta, i, 3); healed >= cell(t, ta, i, 2) {
			t.Errorf("row %d: no healing visible", i)
		}
	}
}

func TestExtensionE7VirtualCircadian(t *testing.T) {
	ta, err := ExtensionE7()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 3 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	// No-recovery reclaims least; accelerated-proactive reclaims most.
	none := cell(t, ta, 0, 2)
	passive := cell(t, ta, 1, 2)
	accel := cell(t, ta, 2, 2)
	if !(accel > passive && passive > none) {
		t.Errorf("reclaimable slack ordering wrong: %v / %v / %v", none, passive, accel)
	}
	// Static margin needed shrinks with better policies.
	if cell(t, ta, 2, 1) >= cell(t, ta, 0, 1) {
		t.Error("accelerated policy does not shrink the static margin")
	}
}

func TestExtensionE8SRAM(t *testing.T) {
	ta, err := ExtensionE8()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 4 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	noneMin := cell(t, ta, 0, 1)
	bothMean := cell(t, ta, 3, 2)
	// Every maintenance row beats none on min SNM; combined has the
	// best mean.
	for i := 1; i < 4; i++ {
		if cell(t, ta, i, 1) <= noneMin {
			t.Errorf("row %d min SNM %v not above none %v", i, cell(t, ta, i, 1), noneMin)
		}
		if i < 3 && cell(t, ta, i, 2) >= bothMean {
			t.Errorf("row %d mean SNM %v not below combined %v", i, cell(t, ta, i, 2), bothMean)
		}
	}
	// Nothing fails outright at this horizon.
	for i := 0; i < 4; i++ {
		if cell(t, ta, i, 4) != 0 {
			t.Errorf("row %d reports failing cells", i)
		}
	}
}

func TestExtensionE9EMLimits(t *testing.T) {
	ta, err := ExtensionE9()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 5 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	// Margin relaxed decays monotonically toward (but stays above) the
	// 20 % duty-cycling floor; the EM share rises monotonically.
	for i := range ta.Rows {
		relaxed := cell(t, ta, i, 4)
		if relaxed <= 20 {
			t.Errorf("row %d: relaxed %.1f %% at or below the duty floor", i, relaxed)
		}
		if i == 0 {
			continue
		}
		if relaxed >= cell(t, ta, i-1, 4) {
			t.Errorf("row %d: margin relaxed not decaying", i)
		}
		if cell(t, ta, i, 3) <= cell(t, ta, i-1, 3) {
			t.Errorf("row %d: EM share not rising", i)
		}
	}
	// First month is still BTI-dominated (≥60 % relaxed); by year four
	// EM dominates (≥95 % share).
	if cell(t, ta, 0, 4) < 60 {
		t.Errorf("month-one relaxed %.1f %% too low", cell(t, ta, 0, 4))
	}
	if cell(t, ta, 4, 3) < 95 {
		t.Errorf("year-four EM share %.1f %% too low", cell(t, ta, 4, 3))
	}
}

func TestExtensionE10ChipVariation(t *testing.T) {
	ta, err := lab(t).ExtensionE10()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 2 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	// Mean relaxed near the headline, tight sigma, whole population
	// passes.
	if mean := cell(t, ta, 0, 1); math.Abs(mean-72.4) > 3 {
		t.Errorf("population mean relaxed = %v, want ≈72.4", mean)
	}
	if sigma := cell(t, ta, 0, 2); sigma > 3 {
		t.Errorf("population σ = %v too wide", sigma)
	}
	if lo := cell(t, ta, 1, 3); lo < 90 {
		t.Errorf("worst chip remaining margin = %v, headline broken", lo)
	}
	if !strings.Contains(ta.Notes[0], "25/25") {
		t.Errorf("pass note = %q", ta.Notes[0])
	}
}

func TestExtensionE11PUF(t *testing.T) {
	ta, err := lab(t).ExtensionE11()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 3 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	freshFlips := cell(t, ta, 0, 1)
	agedFlips := cell(t, ta, 1, 1)
	healedFlips := cell(t, ta, 2, 1)
	if freshFlips != 0 {
		t.Errorf("fresh flips = %v", freshFlips)
	}
	if agedFlips <= 0 {
		t.Error("aging flipped nothing — study vacuous")
	}
	if healedFlips >= agedFlips {
		t.Errorf("healing did not revert flips: %v -> %v", agedFlips, healedFlips)
	}
	if cell(t, ta, 2, 2) <= cell(t, ta, 1, 2) {
		t.Error("healing did not improve reliability")
	}
	if cell(t, ta, 0, 2) < 95 {
		t.Errorf("fresh reliability = %v %%", cell(t, ta, 0, 2))
	}
}

func TestExtensionE12VoltageAcceleration(t *testing.T) {
	ta, err := lab(t).ExtensionE12()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 4 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	for i := range ta.Rows {
		if i > 0 && cell(t, ta, i, 1) <= cell(t, ta, i-1, 1) {
			t.Errorf("row %d: degradation not accelerating with the rail", i)
		}
		// Recovered fraction stays near the headline regardless of how
		// the damage was created.
		if relaxed := cell(t, ta, i, 3); math.Abs(relaxed-72.4) > 5 {
			t.Errorf("row %d: margin relaxed %v strays from ≈72.4", i, relaxed)
		}
	}
}

func TestExtensionsBundle(t *testing.T) {
	arts, err := lab(t).Extensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 12 {
		t.Fatalf("extension count = %d", len(arts))
	}
	for i, a := range arts {
		if !strings.HasPrefix(a.ID, "Extension E") {
			t.Errorf("artifact %d ID = %q", i, a.ID)
		}
		if a.Render() == "" {
			t.Errorf("artifact %d renders empty", i)
		}
	}
}
