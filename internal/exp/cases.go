// Package exp reproduces the paper's evaluation: the Table 1 test-case
// matrix, the full accelerated-test schedule on five simulated chips,
// and a generator for every table (1–5) and figure (1, 4–9) in the
// paper, each returning a renderable artifact plus the raw series for
// further analysis.
package exp

import (
	"fmt"

	"selfheal/internal/measure"
	"selfheal/internal/units"
)

// CaseID names a Table 1 test case using the paper's encoding:
// AS = accelerated stress, AR = accelerated recovery, R = passive
// recovery; then temperature, AC/DC or rail (Z = 0 V, N = −0.3 V), and
// duration in hours.
type CaseID string

// The paper's eleven test-case rows (Table 1).
const (
	Baseline  CaseID = "BASE20AC2" // 2 h burn-in at 20 °C / 1.2 V on every chip
	AS110AC24 CaseID = "AS110AC24"
	AS110DC24 CaseID = "AS110DC24"
	AS100DC24 CaseID = "AS100DC24"
	AS110DC48 CaseID = "AS110DC48"
	R20Z6     CaseID = "R20Z6"
	AR20N6    CaseID = "AR20N6"
	AR110Z6   CaseID = "AR110Z6"
	AR110N6   CaseID = "AR110N6"
	AR110N12  CaseID = "AR110N12"
)

// Case is one scheduled phase on one chip.
type Case struct {
	ID    CaseID
	Chip  int // paper chip number, 1–5
	Kind  measure.PhaseKind
	TempC units.Celsius
	Vdd   units.Volt
	Hours float64
	// AC applies to stress cases; recovery cases leave it false.
	AC bool
	// AlphaRatio is the active:sleep ratio α for recovery cases that
	// pair with a stress case (4 throughout the paper); 0 otherwise.
	AlphaRatio float64
}

// Schedule returns the paper's full test schedule in execution order.
// Each chip first receives the 2 h room-temperature baseline; chips 2–5
// then run their stress case followed by their recovery case; chip 5 is
// re-stressed for 48 h and recovered for 12 h (the Table 5 comparison).
func Schedule() []Case {
	return []Case{
		{ID: AS110AC24, Chip: 1, Kind: measure.Stress, TempC: 110, Vdd: 1.2, Hours: 24, AC: true},
		{ID: AS110DC24, Chip: 2, Kind: measure.Stress, TempC: 110, Vdd: 1.2, Hours: 24},
		{ID: R20Z6, Chip: 2, Kind: measure.Recovery, TempC: 20, Vdd: 0, Hours: 6, AlphaRatio: 4},
		{ID: AS110DC24, Chip: 3, Kind: measure.Stress, TempC: 110, Vdd: 1.2, Hours: 24},
		{ID: AR20N6, Chip: 3, Kind: measure.Recovery, TempC: 20, Vdd: -0.3, Hours: 6, AlphaRatio: 4},
		{ID: AS100DC24, Chip: 4, Kind: measure.Stress, TempC: 100, Vdd: 1.2, Hours: 24},
		{ID: AR110Z6, Chip: 4, Kind: measure.Recovery, TempC: 110, Vdd: 0, Hours: 6, AlphaRatio: 4},
		{ID: AS110DC24, Chip: 5, Kind: measure.Stress, TempC: 110, Vdd: 1.2, Hours: 24},
		{ID: AR110N6, Chip: 5, Kind: measure.Recovery, TempC: 110, Vdd: -0.3, Hours: 6, AlphaRatio: 4},
		{ID: AS110DC48, Chip: 5, Kind: measure.Stress, TempC: 110, Vdd: 1.2, Hours: 48},
		{ID: AR110N12, Chip: 5, Kind: measure.Recovery, TempC: 110, Vdd: -0.3, Hours: 12, AlphaRatio: 4},
	}
}

// PhaseSpec converts the case into a runnable bench phase, using the
// paper's sampling cadence: 20-minute wake-ups under stress, 30-minute
// wake-ups under recovery.
func (c Case) PhaseSpec() measure.PhaseSpec {
	spec := measure.PhaseSpec{
		Name:     string(c.ID),
		Kind:     c.Kind,
		Duration: units.HoursToSeconds(c.Hours),
		TempC:    c.TempC,
		Vdd:      c.Vdd,
		AC:       c.AC,
	}
	if c.Kind == measure.Stress {
		spec.FrozenIn0 = true
		spec.SampleEvery = 20 * units.Minute
	} else {
		spec.SampleEvery = 30 * units.Minute
	}
	return spec
}

// key identifies a stored run: one case executed on one chip (chip 5
// runs two stress and two recovery cases, so the ID alone is not
// unique across a schedule, but ID+chip is).
type key struct {
	id   CaseID
	chip int
}

func (k key) String() string { return fmt.Sprintf("%s/chip%d", k.id, k.chip) }
