package exp

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"selfheal/internal/fit"
	"selfheal/internal/measure"
	"selfheal/internal/rng"
	"selfheal/internal/series"
)

// sharedLab runs the full schedule once for the whole test package.
var sharedLab *Lab

func lab(t *testing.T) *Lab {
	t.Helper()
	if sharedLab == nil {
		sharedLab = NewLab(2014)
		if err := sharedLab.RunAll(); err != nil {
			t.Fatalf("running the paper schedule: %v", err)
		}
	}
	return sharedLab
}

func cell(t *testing.T, ta TableArtifact, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(ta.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, ta.Rows[row][col], err)
	}
	return v
}

func TestScheduleShape(t *testing.T) {
	sch := Schedule()
	if len(sch) != 11 {
		t.Fatalf("schedule has %d cases, want 11", len(sch))
	}
	chips := map[int]bool{}
	stress, recov := 0, 0
	for _, c := range sch {
		chips[c.Chip] = true
		if c.Kind == measure.Stress {
			stress++
		} else {
			recov++
			if c.AlphaRatio != 4 {
				t.Errorf("%s: α = %g, want 4", c.ID, c.AlphaRatio)
			}
			if c.Hours != 6 && c.Hours != 12 {
				t.Errorf("%s: sleep %g h", c.ID, c.Hours)
			}
		}
		if err := c.PhaseSpec().Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", c.ID, err)
		}
	}
	if len(chips) != 5 || stress != 6 || recov != 5 {
		t.Errorf("chips=%d stress=%d recovery=%d, want 5/6/5", len(chips), stress, recov)
	}
}

func TestPhaseSpecSamplingCadence(t *testing.T) {
	sch := Schedule()
	for _, c := range sch {
		spec := c.PhaseSpec()
		if c.Kind == measure.Stress && spec.SampleEvery != 20*60 {
			t.Errorf("%s: stress sampling %v, want 20 min", c.ID, spec.SampleEvery)
		}
		if c.Kind == measure.Recovery && spec.SampleEvery != 30*60 {
			t.Errorf("%s: recovery sampling %v, want 30 min", c.ID, spec.SampleEvery)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	f := Figure1()
	if len(f.Series) != 1 || f.Series[0].Len() < 100 {
		t.Fatalf("figure 1 series malformed")
	}
	pts := f.Series[0].Points
	// Rises to a peak at t1, then drops during recovery but not to zero.
	peak := pts[0].V
	peakIdx := 0
	for i, p := range pts {
		if p.V > peak {
			peak, peakIdx = p.V, i
		}
	}
	last := pts[len(pts)-1].V
	if peakIdx == len(pts)-1 {
		t.Error("no recovery visible")
	}
	if last >= peak || last <= 0 {
		t.Errorf("recovery end %v vs peak %v", last, peak)
	}
	if got := f.Render(); !strings.Contains(got, "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure4ACHalfDC(t *testing.T) {
	f, err := lab(t).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("series count = %d", len(f.Series))
	}
	acLast, _ := f.Series[0].Last()
	dcLast, _ := f.Series[1].Last()
	if ratio := acLast.V / dcLast.V; math.Abs(ratio-0.5) > 0.1 {
		t.Errorf("AC/DC = %.3f, want ≈0.5", ratio)
	}
	// DC lands near the paper's 2.2 %.
	if math.Abs(dcLast.V-2.2) > 0.35 {
		t.Errorf("DC degradation = %.2f %%, want ≈2.2 %%", dcLast.V)
	}
	// Fast-then-slow: more than half the final degradation within the
	// first quarter of the test.
	quarter, err := f.Series[1].At(6 * 3600)
	if err != nil {
		t.Fatal(err)
	}
	if quarter < dcLast.V/2 {
		t.Errorf("degradation not front-loaded: %.2f %% at 6 h vs %.2f %% final", quarter, dcLast.V)
	}
}

func TestFigure5TemperatureOrderingAndModelFit(t *testing.T) {
	f, err := lab(t).Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 { // 2 measurements + 2 models
		t.Fatalf("series count = %d", len(f.Series))
	}
	hot, _ := f.Series[0].Last()
	warm, _ := f.Series[2].Last()
	if hot.V <= warm.V {
		t.Errorf("110 °C (%v) not above 100 °C (%v)", hot.V, warm.V)
	}
	// Model fits are quoted with R² in the notes; all must exceed 0.95.
	for _, n := range f.Notes {
		i := strings.LastIndex(n, "R² = ")
		if i < 0 {
			continue
		}
		r2, err := strconv.ParseFloat(strings.TrimSpace(n[i+len("R² = "):]), 64)
		if err != nil {
			t.Fatalf("unparsable note %q", n)
		}
		if r2 < 0.95 {
			t.Errorf("model fit poor: %s", n)
		}
	}
}

func TestFigure6VoltageHelpsAtBothTemperatures(t *testing.T) {
	figs, err := lab(t).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for p, fig := range figs {
		if len(fig.Series) != 4 { // two conditions × (measured + model)
			t.Fatalf("panel %d series count = %d", p, len(fig.Series))
		}
		zero, _ := fig.Series[0].Last() // 0 V measured
		neg, _ := fig.Series[2].Last()  // −0.3 V measured
		if neg.V <= zero.V {
			t.Errorf("panel %d: negative rail (%v ns) not above 0 V (%v ns)", p, neg.V, zero.V)
		}
	}
}

func TestFigure7TemperatureHelpsAtBothVoltages(t *testing.T) {
	figs, err := lab(t).Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for p, fig := range figs {
		cold, _ := fig.Series[0].Last() // 20 °C measured
		hot, _ := fig.Series[2].Last()  // 110 °C measured
		if hot.V <= cold.V {
			t.Errorf("panel %d: 110 °C (%v ns) not above 20 °C (%v ns)", p, hot.V, cold.V)
		}
	}
}

func TestFigure8OrderingMatchesPaper(t *testing.T) {
	f, err := lab(t).Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 8 { // 4 measured + 4 models
		t.Fatalf("series count = %d", len(f.Series))
	}
	// Measured series are at even indices, strongest condition first:
	// final ΔTd must be increasing across them (deepest heal first).
	var finals []float64
	for i := 0; i < 8; i += 2 {
		last, _ := f.Series[i].Last()
		finals = append(finals, last.V)
	}
	for i := 1; i < len(finals); i++ {
		if finals[i] <= finals[i-1] {
			t.Errorf("Fig 8 ordering violated: %v", finals)
			break
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	ta := Table1()
	if len(ta.Rows) != 11 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	out := ta.Render()
	for _, id := range []string{"AS110AC24", "AR110N12", "R20Z6"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing case %s", id)
		}
	}
}

func TestTable2PaperValues(t *testing.T) {
	ta, err := lab(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	dc110 := cell(t, ta, 0, 2)
	dc100 := cell(t, ta, 1, 2)
	ac110 := cell(t, ta, 2, 2)
	if math.Abs(dc110-2.2) > 0.35 {
		t.Errorf("110 °C DC = %.2f %%, want ≈2.2", dc110)
	}
	if dc100 >= dc110 {
		t.Errorf("100 °C (%v) not below 110 °C (%v)", dc100, dc110)
	}
	if ratio := ac110 / dc110; math.Abs(ratio-0.5) > 0.1 {
		t.Errorf("AC/DC = %.2f, want ≈0.5", ratio)
	}
	// Preliminary-test observation: >1 % degradation in all hot cases.
	for i := 0; i < 3; i++ {
		if v := cell(t, ta, i, 2); v < 1 {
			t.Errorf("case %d degradation %.2f %% below the 1 %% screening level", i, v)
		}
	}
}

func TestTable3FitsConverge(t *testing.T) {
	ta, err := lab(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 3 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	for i := range ta.Rows {
		if beta := cell(t, ta, i, 1); beta <= 0 {
			t.Errorf("row %d: β = %v", i, beta)
		}
		if r2 := cell(t, ta, i, 3); r2 < 0.95 {
			t.Errorf("row %d: R² = %v", i, r2)
		}
	}
}

func TestTable4MarginRelaxed(t *testing.T) {
	ta, err := lab(t).Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 4 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	// Row 0 is AR110N6 (strongest): ≈72.4 %.
	if v := cell(t, ta, 0, 2); math.Abs(v-72.4) > 3 {
		t.Errorf("AR110N6 margin relaxed = %.1f %%, want ≈72.4", v)
	}
	// Monotone decreasing down the legend order.
	for i := 1; i < 4; i++ {
		if cell(t, ta, i, 2) >= cell(t, ta, i-1, 2) {
			t.Errorf("margin-relaxed ordering violated at row %d", i)
		}
	}
	// All accelerated rows within 90 %, the passive row not.
	for i := 0; i < 3; i++ {
		if ta.Rows[i][4] != "yes" {
			t.Errorf("accelerated row %d not within margin", i)
		}
	}
	if ta.Rows[3][4] != "no" {
		t.Error("passive row unexpectedly within margin")
	}
}

func TestTable5SameAlphaSameMargin(t *testing.T) {
	ta, err := lab(t).Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 2 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	a := cell(t, ta, 0, 4)
	b := cell(t, ta, 1, 4)
	if math.Abs(a-b) > 5 {
		t.Errorf("α=4 margin relaxed differs: %.1f vs %.1f", a, b)
	}
}

func TestHeadlineHolds(t *testing.T) {
	ta, err := lab(t).Headline()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ta.Notes[0], "HEADLINE HOLDS") {
		t.Errorf("headline verdict: %q", ta.Notes[0])
	}
}

func TestFigure9BoundedEnvelope(t *testing.T) {
	f, err := lab(t).Figure9()
	if err != nil {
		t.Fatal(err)
	}
	contLast, _ := f.Series[0].Last()
	cycLast, _ := f.Series[1].Last()
	if cycLast.V >= contLast.V {
		t.Errorf("rejuvenated (%v ns) not below continuous (%v ns)", cycLast.V, contLast.V)
	}
	// The cycled trace must be a sawtooth: its maximum exceeds its
	// final value (final sample is a post-recovery trough).
	peak := 0.0
	for _, p := range f.Series[1].Points {
		peak = math.Max(peak, p.V)
	}
	if peak <= cycLast.V {
		t.Error("no sawtooth structure in the rejuvenated trace")
	}
}

func TestFigure10CircadianWins(t *testing.T) {
	ta, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 3 {
		t.Fatalf("rows = %d", len(ta.Rows))
	}
	staticWorst := cell(t, ta, 0, 1)
	circadianWorst := cell(t, ta, 2, 1)
	if circadianWorst >= staticWorst {
		t.Errorf("circadian worst %.4f not below static %.4f", circadianWorst, staticWorst)
	}
	if relaxed := cell(t, ta, 2, 6); relaxed <= 0 {
		t.Errorf("no margin relaxed vs static: %v", relaxed)
	}
	// Equal throughput ⇒ near-equal energy; the healing rail costs only
	// the pump overhead (sub-percent).
	if st, ci := cell(t, ta, 0, 5), cell(t, ta, 2, 5); ci > st*1.01 {
		t.Errorf("circadian energy %v more than 1 %% above static %v", ci, st)
	}
}

// TestHeadlineRobustToModelPerturbation guards against the headline
// being an artifact of one calibration point: perturbing the device
// model's least-certain constants (irreversible fraction, AC exponent,
// recovery prefactor) by ±tens of percent must leave every accelerated
// case within 90 % of original margin.
func TestHeadlineRobustToModelPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep")
	}
	perturbations := []struct {
		name string
		mod  func(*measure.BenchParams)
	}{
		{"perm+50%", func(p *measure.BenchParams) { p.FPGA.TD.PermFrac *= 1.5 }},
		{"perm-50%", func(p *measure.BenchParams) { p.FPGA.TD.PermFrac *= 0.5 }},
		{"K2-10%", func(p *measure.BenchParams) { p.FPGA.TD.K2 *= 0.9 }},
		{"acexp+10%", func(p *measure.BenchParams) { p.FPGA.TD.ACExp *= 1.1 }},
		{"C+50%", func(p *measure.BenchParams) { p.FPGA.TD.C *= 1.5 }},
	}
	for _, pert := range perturbations {
		params := measure.DefaultBenchParams()
		params.FPGA.ChipSigmaFrac = 0
		params.FPGA.LocalSigmaFrac = 0
		params.FPGA.VthSigmaV = 0
		pert.mod(&params)
		b, err := measure.NewBench("rob", params, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := b.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "stress", Kind: measure.Stress, Duration: 24 * 3600,
			TempC: 110, Vdd: 1.2, FrozenIn0: true,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "sleep", Kind: measure.Recovery, Duration: 6 * 3600,
			TempC: 110, Vdd: -0.3,
		}); err != nil {
			t.Fatal(err)
		}
		healed, err := b.Sample()
		if err != nil {
			t.Fatal(err)
		}
		ok, err := measure.WithinOriginalMargin(fresh.DelayNS, healed.DelayNS,
			measure.DefaultMarginFrac, 90)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			rem, _ := measure.RemainingMarginPct(fresh.DelayNS, healed.DelayNS, measure.DefaultMarginFrac)
			t.Errorf("%s: headline broke — remaining margin %.1f %%", pert.name, rem)
		}
	}
}

func TestGetUnknownRun(t *testing.T) {
	if _, err := lab(t).Get(CaseID("NOPE"), 1); err == nil {
		t.Error("unknown case accepted")
	}
	if _, err := lab(t).Get(AS110DC24, 1); err == nil {
		t.Error("case on wrong chip accepted")
	}
}

func TestLabFreshRequiresFabrication(t *testing.T) {
	l := NewLab(99)
	if _, err := l.Fresh(1); err == nil {
		t.Error("Fresh on unfabricated chip accepted")
	}
	if _, err := l.Bench(0); err == nil {
		t.Error("chip 0 accepted")
	}
}

// TestDumpCSVRoundTrip exports every run's series and re-extracts the
// Table 3 parameters from the files — the exact cmd/selfheal-fit
// workflow — checking the pipeline end to end.
func TestDumpCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	names, err := lab(t).DumpCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 11 {
		t.Fatalf("wrote %d files, want 11", len(names))
	}
	f, err := os.Open(filepath.Join(dir, "AS110DC24_chip2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := series.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 73 {
		t.Errorf("re-read series has %d samples", s.Len())
	}
	p, err := fit.ExtractWearout(s)
	if err != nil {
		t.Fatal(err)
	}
	if p.R2 < 0.95 || p.BetaNS <= 0 {
		t.Errorf("round-trip fit poor: %+v", p)
	}
}

func TestRunsOrderedBySchedule(t *testing.T) {
	runs, err := lab(t).Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 11 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].Case.ID != AS110AC24 || runs[10].Case.ID != AR110N12 {
		t.Errorf("schedule order broken: first %s last %s", runs[0].Case.ID, runs[10].Case.ID)
	}
}

func TestRunAllIdempotent(t *testing.T) {
	l := lab(t)
	r1, err := l.Get(AS110DC24, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RunAll(); err != nil {
		t.Fatal(err)
	}
	r2, err := l.Get(AS110DC24, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("RunAll re-executed cases")
	}
}
