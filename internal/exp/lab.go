package exp

import (
	"fmt"
	"os"
	"path/filepath"

	"selfheal/internal/measure"
	"selfheal/internal/rng"
	"selfheal/internal/ro"
	"selfheal/internal/series"
	"selfheal/internal/units"
)

// Run is the stored outcome of one executed case.
type Run struct {
	Case Case
	// Delay is the sampled CUT delay (ns) against phase-relative time.
	Delay *series.Series
	// FreshNS is the chip's post-baseline fresh delay; StartNS and
	// EndNS bracket this phase.
	FreshNS, StartNS, EndNS float64
}

// DegradationSeries returns the phase's delay change relative to the
// chip's fresh delay, as ΔTd in nanoseconds.
func (r *Run) DegradationSeries(name string) *series.Series {
	return r.Delay.Map(name, func(v float64) float64 { return v - r.FreshNS })
}

// DegradationPctSeries returns frequency degradation percent over time:
// (f0−f)/f0·100 = (Td−Td0)/Td·100.
func (r *Run) DegradationPctSeries(name string) *series.Series {
	return r.Delay.Map(name, func(v float64) float64 {
		return (v - r.FreshNS) / v * 100
	})
}

// RecoveredDelaySeries returns RD(t2) = Td(start) − Td(t2) in ns
// (Eq. 16), the paper's recovery-phase metric.
func (r *Run) RecoveredDelaySeries(name string) *series.Series {
	return r.Delay.Map(name, func(v float64) float64 {
		return measure.RecoveredDelay(r.StartNS, v)
	})
}

// Lab owns the five chips and executes the paper's schedule once,
// caching every run. All figure and table generators read from the
// cache, so a single Run() powers the entire evaluation.
type Lab struct {
	Params measure.BenchParams
	Seed   uint64

	benches map[int]*measure.Bench
	fresh   map[int]ro.Measurement
	runs    map[key]*Run
	ran     bool
}

// NewLab returns a lab with the paper's bench configuration.
func NewLab(seed uint64) *Lab {
	return &Lab{
		Params:  measure.DefaultBenchParams(),
		Seed:    seed,
		benches: make(map[int]*measure.Bench),
		fresh:   make(map[int]ro.Measurement),
		runs:    make(map[key]*Run),
	}
}

// Bench returns the bench for a chip number, fabricating it (with the
// 2 h room-temperature baseline burn-in applied) on first use.
func (l *Lab) Bench(chip int) (*measure.Bench, error) {
	if b, ok := l.benches[chip]; ok {
		return b, nil
	}
	if chip < 1 {
		return nil, fmt.Errorf("exp: invalid chip number %d", chip)
	}
	b, err := measure.NewBench(fmt.Sprintf("Chip%d", chip), l.Params,
		rng.New(l.Seed+uint64(chip)*0x9e37))
	if err != nil {
		return nil, err
	}
	// "As a baseline all chips are stressed at 20 °C and 1.2 V for
	// 2 hours initially": a burn-in that settles the fastest traps so
	// the fresh reference is stable.
	if _, err := b.RunPhase(measure.PhaseSpec{
		Name: string(Baseline), Kind: measure.Stress,
		Duration: 2 * units.Hour, TempC: 20, Vdd: 1.2, AC: true,
	}); err != nil {
		return nil, fmt.Errorf("exp: baseline on chip %d: %w", chip, err)
	}
	m, err := b.Sample()
	if err != nil {
		return nil, fmt.Errorf("exp: fresh sample on chip %d: %w", chip, err)
	}
	l.benches[chip] = b
	l.fresh[chip] = m
	return b, nil
}

// Fresh returns the post-baseline fresh measurement of a chip that has
// been fabricated via Bench.
func (l *Lab) Fresh(chip int) (ro.Measurement, error) {
	m, ok := l.fresh[chip]
	if !ok {
		return ro.Measurement{}, fmt.Errorf("exp: chip %d not fabricated", chip)
	}
	return m, nil
}

// RunAll executes the full paper schedule once. Calling it again is a
// no-op.
func (l *Lab) RunAll() error {
	if l.ran {
		return nil
	}
	for _, c := range Schedule() {
		if _, err := l.runCase(c); err != nil {
			return err
		}
	}
	l.ran = true
	return nil
}

// runCase executes one case on its chip and caches the outcome.
func (l *Lab) runCase(c Case) (*Run, error) {
	k := key{id: c.ID, chip: c.Chip}
	if r, ok := l.runs[k]; ok {
		return r, nil
	}
	b, err := l.Bench(c.Chip)
	if err != nil {
		return nil, err
	}
	start, err := b.Sample()
	if err != nil {
		return nil, fmt.Errorf("exp: %v pre-sample: %w", k, err)
	}
	s, err := b.RunPhase(c.PhaseSpec())
	if err != nil {
		return nil, fmt.Errorf("exp: running %v: %w", k, err)
	}
	last, _ := s.Last()
	r := &Run{
		Case:    c,
		Delay:   s,
		FreshNS: l.fresh[c.Chip].DelayNS,
		StartNS: start.DelayNS,
		EndNS:   last.V,
	}
	l.runs[k] = r
	return r, nil
}

// Get returns the cached run for a case ID on a chip, running the full
// schedule first if needed.
func (l *Lab) Get(id CaseID, chip int) (*Run, error) {
	if err := l.RunAll(); err != nil {
		return nil, err
	}
	r, ok := l.runs[key{id: id, chip: chip}]
	if !ok {
		return nil, fmt.Errorf("exp: no run %s on chip %d", id, chip)
	}
	return r, nil
}

// Runs returns every cached run (running the schedule first if needed)
// in schedule order.
func (l *Lab) Runs() ([]*Run, error) {
	if err := l.RunAll(); err != nil {
		return nil, err
	}
	out := make([]*Run, 0, len(l.runs))
	for _, c := range Schedule() {
		if r, ok := l.runs[key{id: c.ID, chip: c.Chip}]; ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// DumpCSV writes every run's measurement series into dir as
// "<case>_chip<N>.csv": for stress cases ΔTd (ns) against seconds, for
// recovery cases the recovered delay RD (ns) — exactly the series
// cmd/selfheal-fit consumes. It returns the written file names.
func (l *Lab) DumpCSV(dir string) ([]string, error) {
	runs, err := l.Runs()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, r := range runs {
		name := fmt.Sprintf("%s_chip%d.csv", r.Case.ID, r.Case.Chip)
		s := r.DegradationSeries("dTd_ns")
		if r.Case.Kind == measure.Recovery {
			s = r.RecoveredDelaySeries("RD_ns")
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("exp: %w", err)
		}
		werr := s.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			return nil, fmt.Errorf("exp: writing %s: %w", name, werr)
		}
		if cerr != nil {
			return nil, fmt.Errorf("exp: closing %s: %w", name, cerr)
		}
		names = append(names, name)
	}
	return names, nil
}
