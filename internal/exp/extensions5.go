package exp

import (
	"fmt"
	"math"

	"selfheal/internal/measure"

	"selfheal/internal/fpga"
	"selfheal/internal/odometer"
	"selfheal/internal/rng"
	"selfheal/internal/ro"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

// ExtensionE5 compares the two aging monitors the reproduction ships:
// the paper's own single-RO counter (±5 counts at fref = 500 Hz,
// Eq. 14) and the Silicon-Odometer differential sensor of ref [7]. At
// several points along a stress run both read the same die; the table
// reports each sensor's mean estimate and read-out scatter (σ of 50
// reads), showing why ppm-level monitoring matters for reactive
// policies that must trip on fractions of a percent.
func (l *Lab) ExtensionE5() (TableArtifact, error) {
	src := rng.New(l.Seed ^ 0xe5)
	chip, err := fpga.NewChip("E5", fpga.DefaultParams(), src.Split())
	if err != nil {
		return TableArtifact{}, err
	}
	eng := stress.New(chip)
	sensor, err := odometer.New(chip, eng, "odo", odometer.DefaultParams(), src.Split())
	if err != nil {
		return TableArtifact{}, err
	}
	// The counter reads the odometer's stressed oscillator (same CUT).
	counterRO := sensor.Stressed()
	freshCount, err := counterRO.MeasureAveraged(1.2, 1)
	if err != nil {
		return TableArtifact{}, err
	}

	sample := func() (ctrMean, ctrSigma, odoMean, odoSigma float64, err error) {
		const reads = 50
		var ctr, odo []float64
		for i := 0; i < reads; i++ {
			m, err := counterRO.Measure(1.2)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			ctr = append(ctr, ro.DegradationPct(freshCount, m)*1e4) // % → ppm
			r, err := sensor.Measure(1.2)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			odo = append(odo, r.DegradationPPM)
		}
		mean := func(xs []float64) float64 {
			s := 0.0
			for _, x := range xs {
				s += x
			}
			return s / float64(len(xs))
		}
		sigma := func(xs []float64, m float64) float64 {
			s := 0.0
			for _, x := range xs {
				s += (x - m) * (x - m)
			}
			return math.Sqrt(s / float64(len(xs)-1))
		}
		cm, om := mean(ctr), mean(odo)
		return cm, sigma(ctr, cm), om, sigma(odo, om), nil
	}

	rows := [][]string{}
	record := func(label string) error {
		cm, cs, om, os, err := sample()
		if err != nil {
			return err
		}
		rows = append(rows, []string{label,
			fmt.Sprintf("%.0f ± %.0f", cm, cs),
			fmt.Sprintf("%.0f ± %.1f", om, os),
		})
		return nil
	}
	if err := record("fresh"); err != nil {
		return TableArtifact{}, err
	}
	for _, h := range []float64{1, 6, 24} {
		prev := 0.0
		if h > 1 {
			prev = map[float64]float64{6: 1, 24: 6}[h]
		}
		if err := eng.Step(1.2, 110, units.HoursToSeconds(h-prev)); err != nil {
			return TableArtifact{}, err
		}
		if err := record(fmt.Sprintf("after %g h @ 110 °C", h)); err != nil {
			return TableArtifact{}, err
		}
	}
	return TableArtifact{
		ID:      "Extension E5",
		Caption: "Aging-monitor resolution: the paper's RO counter vs the Silicon Odometer (ref [7]), same die",
		Header:  []string{"Point", "Counter reading (ppm)", "Odometer reading (ppm)"},
		Rows:    rows,
		Notes: []string{
			"the counter quantizes at 1 count = 200 ppm and carries ±5 counts of read-out noise; the odometer resolves single ppm",
			"reactive rejuvenation policies tripping on sub-0.1 % thresholds need the differential sensor",
		},
	}, nil
}

// ExtensionE12 sweeps the stress-voltage knob of Eq. 8 — the
// acceleration GNOMO trades on and accelerated testing exploits: 24 h
// of DC stress at 110 °C across supply voltages, plus the recovered
// fraction a standard 6 h combined sleep then buys. Degradation grows
// exponentially with the rail; the recovered *fraction* barely moves —
// the healing knobs and the stress knobs are independent.
func (l *Lab) ExtensionE12() (TableArtifact, error) {
	rows := [][]string{}
	prevDeg := 0.0
	for _, vdd := range []units.Volt{1.1, 1.2, 1.3, 1.4} {
		b, err := measure.NewBench(fmt.Sprintf("E12v%g", vdd), l.Params,
			rng.New(l.Seed^uint64(vdd*1e4)))
		if err != nil {
			return TableArtifact{}, err
		}
		fresh, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "stress", Kind: measure.Stress, Duration: 24 * units.Hour,
			TempC: 110, Vdd: vdd, FrozenIn0: true,
		}); err != nil {
			return TableArtifact{}, err
		}
		// Measure at the nominal operating point regardless of the
		// stress rail, like the paper's read-outs.
		b.PSU.SetNominal()
		stressed, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		if _, err := b.RunPhase(measure.PhaseSpec{
			Name: "sleep", Kind: measure.Recovery, Duration: 6 * units.Hour,
			TempC: 110, Vdd: -0.3,
		}); err != nil {
			return TableArtifact{}, err
		}
		healed, err := b.Sample()
		if err != nil {
			return TableArtifact{}, err
		}
		deg := (stressed.DelayNS - fresh.DelayNS) / fresh.DelayNS * 100
		relaxed, err := measure.MarginRelaxedPct(fresh.DelayNS, stressed.DelayNS, healed.DelayNS)
		if err != nil {
			return TableArtifact{}, err
		}
		accel := "-"
		if prevDeg > 0 {
			accel = fmt.Sprintf("%.2f×", deg/prevDeg)
		}
		prevDeg = deg
		rows = append(rows, []string{
			fmt.Sprintf("%g V", float64(vdd)),
			fmt.Sprintf("%.2f", deg),
			accel,
			fmt.Sprintf("%.1f", relaxed),
		})
	}
	return TableArtifact{
		ID:      "Extension E12",
		Caption: "Stress-voltage acceleration (Eq. 8 knob): 24 h DC @ 110 °C, then the standard 6 h combined sleep",
		Header:  []string{"Stress rail", "Degradation (%)", "Step acceleration", "Margin relaxed (%)"},
		Rows:    rows,
		Notes: []string{
			"degradation grows monotonically with the rail (the exp(Bs·V/(tox·kT)) term; ≈6 % per 100 mV at this calibration) — the lever accelerated test programs pull",
			"the recovered fraction is nearly rail-independent: healing strength is set by the sleep conditions, not the damage source",
		},
	}, nil
}
