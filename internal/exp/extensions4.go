package exp

import (
	"fmt"

	"selfheal/internal/fpga"
	"selfheal/internal/puf"
	"selfheal/internal/rng"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

// ExtensionE11 reproduces the concern of the paper's ref [17] (Maiti &
// Schaumont, FPL'11 — "The Impact of Aging on an FPGA-Based Physical
// Unclonable Function") and applies the paper's remedy: RO-PUF bits
// flip as asymmetric usage ages the oscillator pairs differentially,
// and an accelerated rejuvenation shrinks the differential, reverting
// most flipped bits. Averaged over a small population of chips.
func (l *Lab) ExtensionE11() (TableArtifact, error) {
	const (
		chips       = 5
		stressHours = 48
		sleepHours  = 12
		reads       = 25
	)
	type phase struct {
		label string
		flips float64
		rel   float64
	}
	phases := []phase{{label: "fresh (enrolled)"},
		{label: fmt.Sprintf("aged %d h @ 110 °C", stressHours)},
		{label: fmt.Sprintf("healed %d h @ 110 °C / −0.3 V", sleepHours)}}

	for c := 0; c < chips; c++ {
		params := fpga.DefaultParams()
		params.LocalSigmaFrac = 0.02 // PUF-grade device mismatch
		chip, err := fpga.NewChip(fmt.Sprintf("E11c%d", c), params,
			rng.New(l.Seed*7919+uint64(c)))
		if err != nil {
			return TableArtifact{}, err
		}
		eng := stress.New(chip)
		eng.StressIdleCells = false
		u, err := puf.New(chip, eng, "puf", puf.DefaultParams(), rng.New(l.Seed+uint64(c)*13))
		if err != nil {
			return TableArtifact{}, err
		}
		record := func(p *phase) error {
			flips, err := u.FlippedBits()
			if err != nil {
				return err
			}
			rel, err := u.Reliability(reads)
			if err != nil {
				return err
			}
			p.flips += float64(flips) / chips
			p.rel += rel / chips
			return nil
		}
		if err := record(&phases[0]); err != nil {
			return TableArtifact{}, err
		}
		if err := eng.Step(1.2, 110, stressHours*units.Hour); err != nil {
			return TableArtifact{}, err
		}
		if err := record(&phases[1]); err != nil {
			return TableArtifact{}, err
		}
		if err := eng.Step(-0.3, 110, sleepHours*units.Hour); err != nil {
			return TableArtifact{}, err
		}
		if err := record(&phases[2]); err != nil {
			return TableArtifact{}, err
		}
	}
	rows := make([][]string, 0, len(phases))
	for _, p := range phases {
		rows = append(rows, []string{
			p.label,
			fmt.Sprintf("%.1f", p.flips),
			fmt.Sprintf("%.1f", p.rel*100),
		})
	}
	return TableArtifact{
		ID:      "Extension E11",
		Caption: fmt.Sprintf("RO-PUF aging and rejuvenation (ref [17]): 16-bit PUFs averaged over %d chips", chips),
		Header:  []string{"Phase", "Flipped bits (of 16)", "Reliability vs enrolled (%)"},
		Rows:    rows,
		Notes: []string{
			"asymmetric usage (one oscillator free-running, its pair frozen) ages the pairs differentially and flips enrolled bits",
			"rejuvenation removes the same fraction of every device's shift, shrinking the differential — most flipped bits revert",
		},
	}, nil
}
