package exp

import (
	"fmt"

	"selfheal/internal/fpga"
	"selfheal/internal/netlist"
	"selfheal/internal/rng"
	"selfheal/internal/sched"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

// ExtensionE6 runs the paper's experiment on *real logic* instead of a
// ring oscillator: a 4-bit ripple-carry adder technology-mapped onto
// the fabric, aged for 24 h at 110 °C under three input workloads, then
// rejuvenated for 6 h under the combined condition. Degradation is the
// static-timing critical path — what a deployed design actually loses.
func (l *Lab) ExtensionE6() (TableArtifact, error) {
	const inputs = 9 // 4+4 operand bits + carry-in
	src := rng.New(l.Seed ^ 0xe6)
	uniform := make([][]bool, 256)
	for i := range uniform {
		row := make([]bool, inputs)
		for j := range row {
			row[j] = src.Bernoulli(0.5)
		}
		uniform[i] = row
	}
	lowActivity := make([][]bool, 256)
	for i := range lowActivity {
		row := make([]bool, inputs)
		for j := range row {
			row[j] = src.Bernoulli(0.1)
		}
		lowActivity[i] = row
	}
	workloads := []struct {
		label string
		trace [][]bool
	}{
		{"idle (all-zero operands)", [][]bool{make([]bool, inputs)}},
		{"low activity (p=0.1)", lowActivity},
		{"uniform random (p=0.5)", uniform},
	}

	rows := make([][]string, 0, len(workloads))
	for _, w := range workloads {
		circ, err := netlist.RippleAdder(4)
		if err != nil {
			return TableArtifact{}, err
		}
		params := fpga.DefaultParams()
		params.ChipSigmaFrac = 0
		params.LocalSigmaFrac = 0
		params.VthSigmaV = 0
		chip, err := fpga.NewChip("E6", params, rng.New(l.Seed^0xadd))
		if err != nil {
			return TableArtifact{}, err
		}
		placed, err := netlist.Place(circ, chip)
		if err != nil {
			return TableArtifact{}, err
		}
		fresh, err := placed.CriticalPathNS(1.2)
		if err != nil {
			return TableArtifact{}, err
		}
		phases, err := placed.Activity(w.trace)
		if err != nil {
			return TableArtifact{}, err
		}
		eng := stress.New(chip)
		eng.StressIdleCells = false
		if err := eng.AddActivity(stress.Activity{Mapping: placed.Mapping, CellPhases: phases}); err != nil {
			return TableArtifact{}, err
		}
		if err := eng.Step(1.2, 110, 24*units.Hour); err != nil {
			return TableArtifact{}, err
		}
		aged, err := placed.CriticalPathNS(1.2)
		if err != nil {
			return TableArtifact{}, err
		}
		if err := eng.Step(-0.3, 110, 6*units.Hour); err != nil {
			return TableArtifact{}, err
		}
		healed, err := placed.CriticalPathNS(1.2)
		if err != nil {
			return TableArtifact{}, err
		}
		rows = append(rows, []string{
			w.label,
			fmt.Sprintf("%.2f", fresh),
			fmt.Sprintf("%.2f", (aged-fresh)/fresh*100),
			fmt.Sprintf("%.2f", (healed-fresh)/fresh*100),
			fmt.Sprintf("%.1f", (aged-healed)/(aged-fresh)*100),
		})
	}
	return TableArtifact{
		ID:      "Extension E6",
		Caption: "Workload-driven aging of mapped logic (4-bit adder, 24 h @ 110 °C, then 6 h @ 110 °C/−0.3 V)",
		Header:  []string{"Workload", "Fresh CP (ns)", "Aged ΔCP (%)", "Healed ΔCP (%)", "Margin relaxed (%)"},
		Rows:    rows,
		Notes: []string{
			"static (idle) inputs are the worst case — the DC-vs-AC result of Fig. 4 at circuit scale",
			"rejuvenation heals whatever cut of the design the workload stressed (Hypothesis 1 at circuit scale)",
		},
	}, nil
}

// ExtensionE7 quantifies the paper's Section 7 future work — the
// "virtual circadian rhythm": because the next scheduled rejuvenation
// is known in advance, an adaptively clocked system can reclaim, every
// slot, the difference between the no-recovery design margin and its
// actual (bounded) degradation.
func ExtensionE7() (TableArtifact, error) {
	cfg := sched.DefaultConfig()
	cfg.Horizon = 30 * units.Day
	cfg.Slot = units.Hour

	baseline, err := sched.Simulate(cfg, sched.NoRecovery{})
	if err != nil {
		return TableArtifact{}, err
	}
	policies := []sched.Policy{
		sched.NoRecovery{},
		sched.Proactive{Alpha: 4, SleepLen: 6 * units.Hour, Cond: sched.PassiveSleep()},
		sched.Proactive{Alpha: 4, SleepLen: 6 * units.Hour, Cond: sched.AcceleratedSleep()},
	}
	rows := make([][]string, 0, len(policies))
	for _, p := range policies {
		out, err := sched.Simulate(cfg, p)
		if err != nil {
			return TableArtifact{}, err
		}
		// Static design: ship margin for this policy's peak. Virtual
		// circadian: re-time every slot against the known envelope —
		// average reclaimable slack relative to the no-recovery margin.
		avg := 0.0
		for _, pt := range out.Trace.Points {
			avg += baseline.PeakPct - pt.V
		}
		avg /= float64(out.Trace.Len())
		rows = append(rows, []string{
			out.Policy,
			fmt.Sprintf("%.3f", out.PeakPct),
			fmt.Sprintf("%.3f", avg),
			fmt.Sprintf("%.2f", avg/(100+avg)*1000),
		})
	}
	return TableArtifact{
		ID:      "Extension E7",
		Caption: "Virtual circadian rhythm (paper §7): margin reclaimable by schedule-aware clocking (30 days)",
		Header:  []string{"Policy", "Static margin needed (%)", "Avg reclaimable slack (%)", "Avg clock gain (‰)"},
		Rows:    rows,
		Notes: []string{
			"slack = no-recovery peak margin − actual degradation at each slot; a schedule-aware DVFS controller can convert it to frequency",
			"clock gain ≈ slack/(1+slack) expressed per mille of nominal frequency",
		},
	}, nil
}
