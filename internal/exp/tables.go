package exp

import (
	"fmt"

	"selfheal/internal/fit"
	"selfheal/internal/measure"
	"selfheal/internal/td"
)

// Table1 renders the paper's test-case matrix.
func Table1() TableArtifact {
	rows := [][]string{}
	for _, c := range Schedule() {
		phase := "Active (Stress)"
		activity := "DC"
		ratio := "-"
		if c.AC {
			activity = "AC"
		}
		if c.Kind == measure.Recovery {
			phase = "Sleep (Recovery)"
			activity = "-"
			ratio = fmt.Sprintf("%g", c.AlphaRatio)
		}
		rows = append(rows, []string{
			string(c.ID),
			fmt.Sprintf("%d", c.Chip),
			phase,
			fmt.Sprintf("%g", float64(c.TempC)),
			fmt.Sprintf("%g", float64(c.Vdd)),
			fmt.Sprintf("%g", c.Hours),
			activity,
			ratio,
		})
	}
	return TableArtifact{
		ID:      "Table 1",
		Caption: "Test cases for accelerated wearout and self-healing",
		Header:  []string{"Case", "Chip", "Phase", "T (°C)", "Voltage (V)", "Time (h)", "Switching", "Active/Sleep"},
		Rows:    rows,
		Notes:   []string{"all chips receive a 2 h baseline at 20 °C / 1.2 V before their first case"},
	}
}

// Table2 reports the end-of-stress delay change (%) per temperature and
// switching-activity condition.
func (l *Lab) Table2() (TableArtifact, error) {
	entries := []struct {
		id    CaseID
		chip  int
		label string
	}{
		{AS110DC24, 2, "110 °C, DC, 24 h"},
		{AS100DC24, 4, "100 °C, DC, 24 h"},
		{AS110AC24, 1, "110 °C, AC, 24 h"},
	}
	rows := make([][]string, 0, len(entries))
	for _, e := range entries {
		r, err := l.Get(e.id, e.chip)
		if err != nil {
			return TableArtifact{}, err
		}
		pct := (r.EndNS - r.FreshNS) / r.FreshNS * 100
		rows = append(rows, []string{string(e.id), e.label,
			fmt.Sprintf("%.2f", pct)})
	}
	return TableArtifact{
		ID:      "Table 2",
		Caption: "Delay change (%) for different stress conditions",
		Header:  []string{"Case", "Condition", "Delay change (%)"},
		Rows:    rows,
		Notes:   []string{"paper shape: 110 °C > 100 °C; AC ≈ half of DC"},
	}, nil
}

// Table3 reports the extracted model parameters: the Eq. 10 fits per
// stress condition (β, C) plus the device-model constants behind them.
func (l *Lab) Table3() (TableArtifact, error) {
	entries := []struct {
		id   CaseID
		chip int
	}{
		{AS110DC24, 2}, {AS100DC24, 4}, {AS110AC24, 1},
	}
	rows := make([][]string, 0, len(entries))
	for _, e := range entries {
		r, err := l.Get(e.id, e.chip)
		if err != nil {
			return TableArtifact{}, err
		}
		p, err := fit.ExtractWearout(r.DegradationSeries(string(e.id)))
		if err != nil {
			return TableArtifact{}, fmt.Errorf("exp: table 3 fit for %s: %w", e.id, err)
		}
		rows = append(rows, []string{string(e.id),
			fmt.Sprintf("%.4f", p.BetaNS),
			fmt.Sprintf("%.3e", p.CPerS),
			fmt.Sprintf("%.4f", p.R2),
		})
	}
	dp := td.DefaultParams()
	return TableArtifact{
		ID:      "Table 3",
		Caption: "Extracted model parameters (ΔTd(t) = β·ln(1 + C·t))",
		Header:  []string{"Case", "β (ns)", "C (1/s)", "R²"},
		Rows:    rows,
		Notes: []string{
			fmt.Sprintf("device constants: K1 = %.4f V, E0s = %.2f eV, Bs = %.3f, tox = %.1f nm", dp.K1, dp.E0s, dp.Bs, dp.ToxNM),
			fmt.Sprintf("recovery constants: K2 = %.3f, E0r = %.4f eV, Br = %.3f nm/V, PermFrac = %.2f", dp.K2, dp.E0r, dp.Br, dp.PermFrac),
		},
	}, nil
}

// Table4 reports the design-margin-relaxed parameter for each recovery
// condition, and the remaining-margin criterion the headline quotes.
func (l *Lab) Table4() (TableArtifact, error) {
	runs, err := l.recoveryRunSet()
	if err != nil {
		return TableArtifact{}, err
	}
	rows := make([][]string, 0, len(runs))
	for _, r := range runs {
		relaxed, err := measure.MarginRelaxedPct(r.FreshNS, r.StartNS, r.EndNS)
		if err != nil {
			return TableArtifact{}, err
		}
		remaining, err := measure.RemainingMarginPct(r.FreshNS, r.EndNS, measure.DefaultMarginFrac)
		if err != nil {
			return TableArtifact{}, err
		}
		within := "no"
		if remaining >= 90 {
			within = "yes"
		}
		rows = append(rows, []string{
			string(r.Case.ID),
			fmt.Sprintf("%g °C / %g V", float64(r.Case.TempC), float64(r.Case.Vdd)),
			fmt.Sprintf("%.1f", relaxed),
			fmt.Sprintf("%.1f", remaining),
			within,
		})
	}
	return TableArtifact{
		ID:      "Table 4",
		Caption: "Design margin relaxed parameter per recovery condition",
		Header:  []string{"Case", "Sleep condition", "Margin relaxed (%)", "Remaining margin (%)", "Within 90 % of original margin"},
		Rows:    rows,
		Notes: []string{
			fmt.Sprintf("margin budget = %.0f %% of fresh path delay", measure.DefaultMarginFrac*100),
			"paper headline: combined 110 °C ∧ −0.3 V relaxes ≈72.4 %; all accelerated cases return within 90 % of original margin",
		},
	}, nil
}

// Table5 compares the two α = 4 schedules on chip 5: AR110N6 after 24 h
// of stress versus AR110N12 after 48 h of re-stress — the paper's
// evidence that the ratio, not the absolute time, sets the relaxed
// margin.
func (l *Lab) Table5() (TableArtifact, error) {
	r6, err := l.Get(AR110N6, 5)
	if err != nil {
		return TableArtifact{}, err
	}
	r12, err := l.Get(AR110N12, 5)
	if err != nil {
		return TableArtifact{}, err
	}
	rows := [][]string{}
	var relaxed [2]float64
	for i, r := range []*Run{r6, r12} {
		v, err := measure.MarginRelaxedPct(r.FreshNS, r.StartNS, r.EndNS)
		if err != nil {
			return TableArtifact{}, err
		}
		relaxed[i] = v
		stressH := 24.0
		if r.Case.ID == AR110N12 {
			stressH = 48
		}
		rows = append(rows, []string{
			string(r.Case.ID),
			fmt.Sprintf("%.0f h", stressH),
			fmt.Sprintf("%g h", r.Case.Hours),
			"4",
			fmt.Sprintf("%.1f", v),
		})
	}
	return TableArtifact{
		ID:      "Table 5",
		Caption: "Same active:sleep ratio ⇒ same design margin relaxed parameter",
		Header:  []string{"Case", "Stress time", "Sleep time", "α", "Margin relaxed (%)"},
		Rows:    rows,
		Notes: []string{fmt.Sprintf("difference between the two schedules: %.1f points (paper: \"the same design margin relaxed parameter can be achieved\")",
			relaxed[1]-relaxed[0])},
	}, nil
}

// Headline evaluates the abstract's claim: stressed chips brought back
// to within 90 % of their original margin by actively rejuvenating for
// only 1/4 of the stress time.
func (l *Lab) Headline() (TableArtifact, error) {
	runs, err := l.recoveryRunSet()
	if err != nil {
		return TableArtifact{}, err
	}
	rows := [][]string{}
	allAccelerated := true
	for _, r := range runs {
		accelerated := r.Case.ID != R20Z6
		remaining, err := measure.RemainingMarginPct(r.FreshNS, r.EndNS, measure.DefaultMarginFrac)
		if err != nil {
			return TableArtifact{}, err
		}
		ok, err := measure.WithinOriginalMargin(r.FreshNS, r.EndNS, measure.DefaultMarginFrac, 90)
		if err != nil {
			return TableArtifact{}, err
		}
		verdict := "PASS"
		if !ok {
			verdict = "fail"
		}
		if accelerated && !ok {
			allAccelerated = false
		}
		kind := "accelerated"
		if !accelerated {
			kind = "passive"
		}
		rows = append(rows, []string{string(r.Case.ID), kind,
			fmt.Sprintf("%.1f", remaining), verdict})
	}
	note := "HEADLINE HOLDS: every accelerated case returns within 90 % of original margin at α = 4"
	if !allAccelerated {
		note = "HEADLINE VIOLATED: an accelerated case missed the 90 % criterion"
	}
	return TableArtifact{
		ID:      "Headline",
		Caption: "\"Back to within 90 % of original margin by rejuvenating 1/4 of the stress time\"",
		Header:  []string{"Case", "Kind", "Remaining margin (%)", "≥90 %"},
		Rows:    rows,
		Notes:   []string{note, "passive gating (R20Z6) is expected to miss — that is the paper's motivation for *active* recovery"},
	}, nil
}
