package fpga

import (
	"math"
	"testing"

	"selfheal/internal/device"
	"selfheal/internal/lut"
	"selfheal/internal/rng"
	"selfheal/internal/units"
)

func newChip(t *testing.T, seed uint64) *Chip {
	t.Helper()
	c, err := NewChip("test", DefaultParams(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.Rows = 0 },
		func(p *Params) { p.Cols = -1 },
		func(p *Params) { p.NominalVdd = 0 },
		func(p *Params) { p.ChipSigmaFrac = -0.1 },
		func(p *Params) { p.LocalSigmaFrac = -0.1 },
		func(p *Params) { p.VthSigmaV = -0.1 },
		func(p *Params) { p.Device.Td0NS = 0 },
		func(p *Params) { p.TD.K1 = 0 },
	}
	for i, mod := range mods {
		p := DefaultParams()
		mod(&p)
		if _, err := NewChip("bad", p, rng.New(1)); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestChipConstruction(t *testing.T) {
	c := newChip(t, 1)
	cols, rows := c.Size()
	if cols != 16 || rows != 16 {
		t.Fatalf("size = %dx%d", cols, rows)
	}
	if c.ID() != "test" {
		t.Errorf("ID = %q", c.ID())
	}
	n := 0
	c.Transistors(func(*device.Transistor) { n++ })
	if n != 16*16*int(lut.NumTransistors) {
		t.Errorf("transistor count = %d", n)
	}
}

func TestChipToChipVariation(t *testing.T) {
	// Distinct seeds must give distinct process corners; same seed must
	// replay identically.
	a := newChip(t, 10)
	b := newChip(t, 11)
	a2 := newChip(t, 10)
	if a.ChipFactor() == b.ChipFactor() {
		t.Error("distinct seeds gave identical chip factor")
	}
	if a.ChipFactor() != a2.ChipFactor() {
		t.Error("same seed did not replay")
	}
	// Chip factor should be near 1 with ~1 % sigma.
	if math.Abs(a.ChipFactor()-1) > 0.06 {
		t.Errorf("chip factor %v implausibly far from 1", a.ChipFactor())
	}
}

func TestWithinDieVariation(t *testing.T) {
	c := newChip(t, 2)
	l, err := c.LUT(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	trs := l.Transistors()
	same := 0
	for i := 1; i < len(trs); i++ {
		if trs[i].Params.Td0NS == trs[0].Params.Td0NS {
			same++
		}
	}
	if same == len(trs)-1 {
		t.Error("no within-die Td0 variation sampled")
	}
}

func TestLUTBounds(t *testing.T) {
	c := newChip(t, 3)
	if _, err := c.LUT(-1, 0); err == nil {
		t.Error("negative x accepted")
	}
	if _, err := c.LUT(0, 16); err == nil {
		t.Error("out-of-range y accepted")
	}
	if _, err := c.LUT(15, 15); err != nil {
		t.Errorf("valid cell rejected: %v", err)
	}
	if c.Used(-1, 5) {
		t.Error("out-of-range Used returned true")
	}
}

func TestMapInverterChain(t *testing.T) {
	c := newChip(t, 4)
	m, err := c.MapInverterChain("ro", 75)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 75 {
		t.Fatalf("mapped %d cells", len(m.Cells))
	}
	// All mapped cells are inverters and marked used.
	usedCount := 0
	c.Cells(func(x, y int, cell *lut.LUT2, used bool) {
		if used {
			usedCount++
			if cell.Eval(true, true) != false || cell.Eval(false, true) != true {
				t.Errorf("cell (%d,%d) not an inverter", x, y)
			}
		}
	})
	if usedCount != 75 {
		t.Errorf("used count = %d", usedCount)
	}
}

func TestMapInverterChainSnakeAdjacency(t *testing.T) {
	c := newChip(t, 5)
	m, err := c.MapInverterChain("ro", 40)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 runs left→right, row 1 right→left: stage 16 (first of row 1)
	// must sit at x=15.
	if got := m.Cells[16].Name(); got != "test.X15Y1" {
		t.Errorf("stage 16 at %q, want test.X15Y1", got)
	}
	if got := m.Cells[31].Name(); got != "test.X0Y1" {
		t.Errorf("stage 31 at %q, want test.X0Y1", got)
	}
}

func TestMapInverterChainErrors(t *testing.T) {
	c := newChip(t, 6)
	if _, err := c.MapInverterChain("ro", 0); err == nil {
		t.Error("zero-length chain accepted")
	}
	if _, err := c.MapInverterChain("ro", 16*16+1); err == nil {
		t.Error("oversized chain accepted")
	}
	if _, err := c.MapInverterChain("a", 10); err != nil {
		t.Fatal(err)
	}
	// A second design goes onto the remaining cells without overlap.
	b, err := c.MapInverterChain("b", 10)
	if err != nil {
		t.Fatalf("second design rejected: %v", err)
	}
	if b.Cells[0].Name() == "test.X0Y0" {
		t.Error("second design reused an occupied cell")
	}
	if c.FreeCells() != 16*16-20 {
		t.Errorf("free cells = %d", c.FreeCells())
	}
	// Exhausting the fabric fails and rolls back cleanly.
	free := c.FreeCells()
	if _, err := c.MapInverterChain("huge", free+1); err == nil {
		t.Error("over-capacity mapping accepted")
	}
	if c.FreeCells() != free {
		t.Errorf("failed mapping leaked cells: %d free, want %d", c.FreeCells(), free)
	}
}

func TestChainFreshDelayCalibration(t *testing.T) {
	p := DefaultParams()
	p.ChipSigmaFrac = 0 // nominal die for the calibration check
	p.LocalSigmaFrac = 0
	p.VthSigmaV = 0
	c, err := NewChip("nom", p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.MapInverterChain("ro", 75)
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.MeasuredDelay(1.2)
	if err != nil {
		t.Fatal(err)
	}
	// 75 stages × 1.3333 ns ≈ 100 ns — the 5 MHz-class oscillator.
	if math.Abs(d-100) > 0.1 {
		t.Errorf("fresh chain delay = %v ns, want ≈100 ns", d)
	}
}

func TestMeasuredDelayGrowsWithStress(t *testing.T) {
	c := newChip(t, 8)
	m, err := c.MapInverterChain("ro", 75)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := m.MeasuredDelay(1.2)
	if err != nil {
		t.Fatal(err)
	}
	hot := units.Celsius(110).Kelvin()
	tp := c.Params().TD
	for i, cell := range m.Cells {
		duties, err := cell.StressDuties(m.StagePhases(i, false, true))
		if err != nil {
			t.Fatal(err)
		}
		for j, tr := range cell.Transistors() {
			if duties[j] > 0 {
				tr.Stress(tp, 1.2, hot, duties[j], 24*units.Hour)
			}
		}
	}
	aged, err := m.MeasuredDelay(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if aged <= fresh {
		t.Errorf("no degradation: %v -> %v", fresh, aged)
	}
	// Ballpark of the paper's 2.2 % after 24 h DC at 110 °C.
	pct := (aged - fresh) / fresh * 100
	if pct < 1.5 || pct > 3.0 {
		t.Errorf("24h DC degradation = %.2f %%, want ~2.2 %%", pct)
	}
}

func TestStagePhases(t *testing.T) {
	c := newChip(t, 9)
	m, err := c.MapInverterChain("ro", 4)
	if err != nil {
		t.Fatal(err)
	}
	// AC: every stage toggles.
	if got := m.StagePhases(2, true, false); len(got) != 2 {
		t.Errorf("AC phases = %v", got)
	}
	// DC frozen at in0=true: stages alternate true/false.
	p0 := m.StagePhases(0, false, true)
	p1 := m.StagePhases(1, false, true)
	if len(p0) != 1 || len(p1) != 1 {
		t.Fatal("DC phases not single")
	}
	if p0[0].In0 != true || p1[0].In0 != false {
		t.Errorf("DC alternation wrong: %v %v", p0, p1)
	}
}

func TestResetClearsAgingAndMapping(t *testing.T) {
	c := newChip(t, 12)
	m, err := c.MapInverterChain("ro", 10)
	if err != nil {
		t.Fatal(err)
	}
	hot := units.Celsius(110).Kelvin()
	m.Cells[0].Transistors()[0].Stress(c.Params().TD, 1.2, hot, 1, units.Hour)
	if c.MeanVthShift() == 0 {
		t.Fatal("stress had no effect")
	}
	c.Reset()
	if c.MeanVthShift() != 0 {
		t.Error("reset left aging")
	}
	if c.Used(0, 0) {
		t.Error("reset left cells used")
	}
	// Remapping after reset succeeds.
	if _, err := c.MapInverterChain("ro2", 10); err != nil {
		t.Errorf("remap failed: %v", err)
	}
}

func TestLeakageDropsWithAging(t *testing.T) {
	c := newChip(t, 13)
	fresh := c.Leakage()
	hot := units.Celsius(110).Kelvin()
	c.Transistors(func(tr *device.Transistor) {
		tr.Stress(c.Params().TD, 1.2, hot, 1, 24*units.Hour)
	})
	if aged := c.Leakage(); aged >= fresh {
		t.Errorf("die leakage did not drop: %v -> %v", fresh, aged)
	}
}

func TestBitstreamRoundTrip(t *testing.T) {
	c := newChip(t, 14)
	if _, err := c.MapInverterChain("ro", 20); err != nil {
		t.Fatal(err)
	}
	l, _ := c.LUT(3, 5)
	l.ConfigureFunc(func(a, b bool) bool { return a && b })
	bs := c.ExtractBitstream()

	// Program a second die with the same bitstream.
	c2 := newChip(t, 15)
	if err := c2.LoadBitstream(bs); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			a, _ := c.LUT(x, y)
			b, _ := c2.LUT(x, y)
			if a.Config() != b.Config() {
				t.Fatalf("config mismatch at (%d,%d)", x, y)
			}
			if c.Used(x, y) != c2.Used(x, y) {
				t.Fatalf("used mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestBitstreamErrors(t *testing.T) {
	c := newChip(t, 16)
	if err := c.LoadBitstream(make(Bitstream, 10)); err == nil {
		t.Error("short bitstream accepted")
	}
	bs := c.ExtractBitstream()
	bs[0] |= 0x80 // undefined bit
	if err := c.LoadBitstream(bs); err == nil {
		t.Error("undefined bits accepted")
	}
}

func TestBitstreamDoesNotHeal(t *testing.T) {
	c := newChip(t, 17)
	hot := units.Celsius(110).Kelvin()
	c.Transistors(func(tr *device.Transistor) {
		tr.Stress(c.Params().TD, 1.2, hot, 1, units.Hour)
	})
	before := c.MeanVthShift()
	if err := c.LoadBitstream(c.ExtractBitstream()); err != nil {
		t.Fatal(err)
	}
	if c.MeanVthShift() != before {
		t.Error("reprogramming altered aging state")
	}
}

func TestTDParamsAccessible(t *testing.T) {
	c := newChip(t, 18)
	if err := c.Params().TD.Validate(); err != nil {
		t.Errorf("chip TD params invalid: %v", err)
	}
}

func BenchmarkNewChip(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := NewChip("b", p, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasuredDelay75(b *testing.B) {
	c, err := NewChip("b", DefaultParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	m, err := c.MapInverterChain("ro", 75)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MeasuredDelay(1.2); err != nil {
			b.Fatal(err)
		}
	}
}
