package fpga

import (
	"fmt"
)

// Bitstream is a serialized chip configuration: one byte per cell in
// row-major order, the low four bits holding the truth table
// (bit b = cfg entry b) and bit 4 the used flag. It lets experiments
// snapshot a configuration from one chip and program an identical
// design onto another — the reconfigurability that makes FPGAs the
// paper's test platform of choice.
type Bitstream []byte

const usedBit = 1 << 4

// ExtractBitstream serializes the current configuration.
func (c *Chip) ExtractBitstream() Bitstream {
	bs := make(Bitstream, 0, c.params.Rows*c.params.Cols)
	for y := 0; y < c.params.Rows; y++ {
		for x := 0; x < c.params.Cols; x++ {
			var b byte
			for bit, v := range c.grid[y][x].Config() {
				if v {
					b |= 1 << bit
				}
			}
			if c.used[y][x] {
				b |= usedBit
			}
			bs = append(bs, b)
		}
	}
	return bs
}

// LoadBitstream programs the chip from a serialized configuration. The
// bitstream must match the grid size exactly and use only defined bits.
// Aging state is untouched — reprogramming a die does not heal it.
func (c *Chip) LoadBitstream(bs Bitstream) error {
	want := c.params.Rows * c.params.Cols
	if len(bs) != want {
		return fmt.Errorf("fpga: bitstream length %d, want %d", len(bs), want)
	}
	for i, b := range bs {
		if b&^(usedBit|0x0f) != 0 {
			return fmt.Errorf("fpga: bitstream byte %d has undefined bits 0x%02x", i, b)
		}
	}
	for i, b := range bs {
		y, x := i/c.params.Cols, i%c.params.Cols
		var cfg [4]bool
		for bit := range cfg {
			cfg[bit] = b>>bit&1 == 1
		}
		c.grid[y][x].Configure(cfg)
		c.used[y][x] = b&usedBit != 0
	}
	return nil
}
