// Package fpga models the 40 nm commercial FPGA the paper uses as its
// test platform, at the granularity its cross-layer model needs: a grid
// of 2-input pass-transistor LUT cells (package lut), bitstream-style
// configuration, design mapping, and chip-to-chip plus within-die
// process variation — the reason the paper compares chips by recovered
// delay rather than absolute frequency.
//
// The paper's five "Chip 1…5" become five NewChip calls with distinct
// variation seeds; every transistor on every chip carries its own aging
// state, so the stress engine (package stress) can reproduce the
// paper's accelerated test schedule cell by cell.
package fpga

import (
	"errors"
	"fmt"

	"selfheal/internal/device"
	"selfheal/internal/lut"
	"selfheal/internal/rng"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

// Params configures a chip model.
type Params struct {
	Rows, Cols int // CLB grid dimensions

	Device device.Params // nominal transistor parameters
	TD     td.Params     // BTI model constants

	NominalVdd units.Volt // core supply (1.2 V for the paper's parts)

	// ChipSigmaFrac is the chip-to-chip σ of the global delay factor
	// (fractional). The paper's fresh ROs differ measurably between
	// chips; ~1 % is typical for a 40 nm process corner spread.
	ChipSigmaFrac float64
	// LocalSigmaFrac is the within-die per-transistor σ of Td0
	// (fractional).
	LocalSigmaFrac float64
	// VthSigmaV is the within-die per-transistor σ of the fresh
	// threshold voltage, in volts.
	VthSigmaV float64
}

// DefaultParams returns the 40 nm fabric model used throughout the
// reproduction: a 16×16 LUT grid (plenty for the 75-stage RO), 1.2 V
// nominal supply, 1 % chip-to-chip and 0.3 % local delay variation.
func DefaultParams() Params {
	return Params{
		Rows:           16,
		Cols:           16,
		Device:         device.DefaultParams(),
		TD:             td.DefaultParams(),
		NominalVdd:     1.2,
		ChipSigmaFrac:  0.01,
		LocalSigmaFrac: 0.003,
		VthSigmaV:      0.005,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Rows <= 0 || p.Cols <= 0:
		return errors.New("fpga: grid dimensions must be positive")
	case p.NominalVdd <= 0:
		return errors.New("fpga: nominal supply must be positive")
	case p.ChipSigmaFrac < 0 || p.LocalSigmaFrac < 0 || p.VthSigmaV < 0:
		return errors.New("fpga: variation sigmas must be non-negative")
	}
	if err := p.Device.Validate(); err != nil {
		return fmt.Errorf("fpga: %w", err)
	}
	if err := p.TD.Validate(); err != nil {
		return fmt.Errorf("fpga: %w", err)
	}
	return nil
}

// Chip is one FPGA die: a grid of LUT cells with per-transistor aging
// state and sampled process variation.
type Chip struct {
	id     string
	params Params
	grid   [][]*lut.LUT2
	used   [][]bool
	// chipFactor is this die's global delay multiplier from
	// chip-to-chip variation.
	chipFactor float64
}

// NewChip fabricates a chip, drawing its process variation from src.
// Chips built with the same parameters and seed are identical.
func NewChip(id string, p Params, src *rng.Source) (*Chip, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Chip{
		id:         id,
		params:     p,
		grid:       make([][]*lut.LUT2, p.Rows),
		used:       make([][]bool, p.Rows),
		chipFactor: 1 + src.NormalWith(0, p.ChipSigmaFrac),
	}
	if c.chipFactor < 0.5 {
		// A die more than 50 % fast would be a yield outlier; clamp to
		// keep delay positive under any draw.
		c.chipFactor = 0.5
	}
	for y := range c.grid {
		c.grid[y] = make([]*lut.LUT2, p.Cols)
		c.used[y] = make([]bool, p.Cols)
		for x := range c.grid[y] {
			cell := lut.New(fmt.Sprintf("%s.X%dY%d", id, x, y), p.Device)
			for _, tr := range cell.Transistors() {
				tr.Params.Td0NS *= c.chipFactor * (1 + src.NormalWith(0, p.LocalSigmaFrac))
				tr.Params.Vth0 += units.Volt(src.NormalWith(0, p.VthSigmaV))
			}
			c.grid[y][x] = cell
		}
	}
	return c, nil
}

// ID returns the chip identifier ("Chip 1" … in the paper's tables).
func (c *Chip) ID() string { return c.id }

// Params returns the fabrication parameters.
func (c *Chip) Params() Params { return c.params }

// ChipFactor returns the die's global delay multiplier (process corner).
func (c *Chip) ChipFactor() float64 { return c.chipFactor }

// Size returns the grid dimensions (cols, rows).
func (c *Chip) Size() (cols, rows int) { return c.params.Cols, c.params.Rows }

// LUT returns the cell at (x, y), or an error if out of range.
func (c *Chip) LUT(x, y int) (*lut.LUT2, error) {
	if y < 0 || y >= c.params.Rows || x < 0 || x >= c.params.Cols {
		return nil, fmt.Errorf("fpga: cell (%d,%d) outside %dx%d grid",
			x, y, c.params.Cols, c.params.Rows)
	}
	return c.grid[y][x], nil
}

// Used reports whether the cell at (x, y) belongs to a mapped design.
func (c *Chip) Used(x, y int) bool {
	if y < 0 || y >= c.params.Rows || x < 0 || x >= c.params.Cols {
		return false
	}
	return c.used[y][x]
}

// Cells calls f for every cell with its coordinates and used flag.
func (c *Chip) Cells(f func(x, y int, cell *lut.LUT2, used bool)) {
	for y := range c.grid {
		for x := range c.grid[y] {
			f(x, y, c.grid[y][x], c.used[y][x])
		}
	}
}

// Transistors calls f for every transistor on the die.
func (c *Chip) Transistors(f func(tr *device.Transistor)) {
	c.Cells(func(_, _ int, cell *lut.LUT2, _ bool) {
		for _, tr := range cell.Transistors() {
			f(tr)
		}
	})
}

// Leakage returns the summed subthreshold leakage of the die in
// nanoamps.
func (c *Chip) Leakage() float64 {
	sum := 0.0
	c.Transistors(func(tr *device.Transistor) { sum += tr.Leakage() })
	return sum
}

// MeanVthShift returns the die-average threshold shift in volts —
// a convenient scalar health indicator.
func (c *Chip) MeanVthShift() float64 {
	sum, n := 0.0, 0
	c.Transistors(func(tr *device.Transistor) { sum += tr.VthShift(); n++ })
	return sum / float64(n)
}

// Reset returns every transistor to the fresh state and unmaps all
// designs (configuration is preserved).
func (c *Chip) Reset() {
	c.Cells(func(x, y int, cell *lut.LUT2, _ bool) {
		cell.Reset()
		c.used[y][x] = false
	})
}

// Mapping is a design placed on a chip: an ordered list of configured
// cells (for the RO, inverter i feeds inverter i+1).
type Mapping struct {
	Chip  *Chip
	Cells []*lut.LUT2
	Name  string
}

// MapCells places n free cells in snake order into a new mapping,
// marking them used but leaving their configuration untouched — the
// raw placement primitive package netlist builds on. Multiple designs
// coexist on one die; mapping fails (with full roll-back) only when
// fewer than n free cells remain.
func (c *Chip) MapCells(name string, n int) (*Mapping, error) {
	if n <= 0 {
		return nil, errors.New("fpga: cell count must be positive")
	}
	m := &Mapping{Chip: c, Name: name, Cells: make([]*lut.LUT2, 0, n)}
	total := c.params.Rows * c.params.Cols
	for i := 0; i < total && len(m.Cells) < n; i++ {
		y := i / c.params.Cols
		x := i % c.params.Cols
		if y%2 == 1 { // snake: odd rows run right-to-left
			x = c.params.Cols - 1 - x
		}
		if c.used[y][x] {
			continue
		}
		c.used[y][x] = true
		m.Cells = append(m.Cells, c.grid[y][x])
	}
	if len(m.Cells) < n {
		// Roll back the partial placement.
		for _, cell := range m.Cells {
			c.Cells(func(x, y int, cc *lut.LUT2, _ bool) {
				if cc == cell {
					c.used[y][x] = false
				}
			})
		}
		return nil, fmt.Errorf("fpga: %d cells do not fit (%d free cells)",
			n, c.FreeCells()+len(m.Cells))
	}
	return m, nil
}

// MapInverterChain places an n-stage LUT-inverter chain (the paper's
// CUT) onto the first n free cells in snake order and configures each
// cell as an inverter.
func (c *Chip) MapInverterChain(name string, n int) (*Mapping, error) {
	m, err := c.MapCells(name, n)
	if err != nil {
		return nil, err
	}
	for _, cell := range m.Cells {
		cell.ConfigureInverter()
	}
	return m, nil
}

// FreeCells returns the number of unmapped cells.
func (c *Chip) FreeCells() int {
	free := 0
	c.Cells(func(_, _ int, _ *lut.LUT2, used bool) {
		if !used {
			free++
		}
	})
	return free
}

// PathDelay returns the summed POI delay in nanoseconds of the whole
// chain for a given per-stage input phase pattern. Because consecutive
// inverter stages see complementary inputs, the stage input alternates
// starting from in0 of the first stage.
func (m *Mapping) PathDelay(vdd units.Volt, firstIn0 bool) (float64, error) {
	total := 0.0
	in0 := firstIn0
	for _, cell := range m.Cells {
		d, err := cell.PathDelay(vdd, in0, true)
		if err != nil {
			return 0, err
		}
		total += d
		in0 = !in0 // inverter output feeds the next stage
	}
	return total, nil
}

// MeasuredDelay returns the oscillation-averaged chain delay in
// nanoseconds: the mean of the two alternating phase assignments, which
// is what the ring oscillator frequency reflects.
func (m *Mapping) MeasuredDelay(vdd units.Volt) (float64, error) {
	a, err := m.PathDelay(vdd, false)
	if err != nil {
		return 0, err
	}
	b, err := m.PathDelay(vdd, true)
	if err != nil {
		return 0, err
	}
	return (a + b) / 2, nil
}

// StagePhases returns the activity phases of stage i under DC stress
// frozen with the chain input at frozenIn0, or under AC (oscillating)
// stress when ac is true.
func (m *Mapping) StagePhases(i int, ac, frozenIn0 bool) []lut.Phase {
	if ac {
		return lut.ACPhase()
	}
	in0 := frozenIn0
	if i%2 == 1 {
		in0 = !frozenIn0
	}
	return lut.DCPhase(in0, true)
}
