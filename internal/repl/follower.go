package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"selfheal/internal/journal"
	"selfheal/internal/store"
)

// FollowerConfig tunes a replication follower.
type FollowerConfig struct {
	NodeID      string
	PrimaryAddr string        // host:port of the primary's -repl-listen
	DialTimeout time.Duration // default 3s
	RetryMin    time.Duration // reconnect backoff floor; default 100ms
	RetryMax    time.Duration // reconnect backoff ceiling; default 3s
	Logger      *slog.Logger
}

// Follower tails a primary's journal stream into its own journal,
// preserving the primary's sequence numbers so a later promotion
// (store.Open of the follower's data directory) replays exactly what
// the primary would have. Every session starts with a full snapshot
// (see the package comment); a sequence gap in the tail — a frame lost
// to a fault — drops the session, and the reconnect resyncs.
type Follower struct {
	j   *journal.Journal
	cfg FollowerConfig
	log *slog.Logger

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu   sync.Mutex
	conn net.Conn // current session's conn, closed by Stop

	connected      atomic.Bool
	recordsApplied atomic.Uint64
	snapshots      atomic.Uint64
	gaps           atomic.Uint64
	connects       atomic.Uint64
	disconnects    atomic.Uint64
	lastSeq        atomic.Uint64
	lastTrace      atomic.Value // string: trace id of the newest traced tail batch
}

// NewFollower wraps j, which the follower owns from Start until Close.
func NewFollower(j *journal.Journal, cfg FollowerConfig) *Follower {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 3 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	f := &Follower{
		j:    j,
		cfg:  cfg,
		log:  cfg.Logger.With("component", "repl", "role", "follower", "primary", cfg.PrimaryAddr),
		stop: make(chan struct{}),
	}
	f.lastSeq.Store(j.Stats().LastSeq)
	return f
}

// Start launches the tailing loop: dial, session, reconnect with
// capped exponential backoff, until Stop.
func (f *Follower) Start() {
	f.wg.Add(1)
	go f.run()
}

func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.cfg.RetryMin
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		err := f.session()
		f.connected.Store(false)
		select {
		case <-f.stop:
			return
		default:
		}
		if err != nil {
			f.log.Warn("replication session ended; reconnecting", "err", err, "backoff", backoff)
		}
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.cfg.RetryMax {
			backoff = f.cfg.RetryMax
		}
	}
}

// session runs one connection: hello, snapshot, tail. Any error drops
// the connection; the caller reconnects and resyncs.
func (f *Follower) session() error {
	c, err := net.DialTimeout("tcp", f.cfg.PrimaryAddr, f.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("repl: dial %s: %w", f.cfg.PrimaryAddr, err)
	}
	f.mu.Lock()
	select {
	case <-f.stop:
		f.mu.Unlock()
		c.Close()
		return errors.New("repl: follower stopped")
	default:
	}
	f.conn = c
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		c.Close()
		f.disconnects.Add(1)
	}()
	f.connects.Add(1)

	hello, err := encodeMsg(kindHello, helloMsg{NodeID: f.cfg.NodeID, LastSeq: f.j.Stats().LastSeq})
	if err != nil {
		return err
	}
	if err := WriteFrame(c, hello); err != nil {
		return err
	}

	var (
		br       = bufio.NewReaderSize(c, 64*1024)
		buf      []byte
		inSnap   bool
		snapRecs []store.Record
		cursor   = f.lastSeq.Load() // highest seq applied this session
		ctx      = context.Background()
	)
	sendAck := func() error {
		payload, err := encodeMsg(kindAck, ackMsg{Seq: cursor})
		if err != nil {
			return err
		}
		return WriteFrame(c, payload)
	}
	for {
		payload, err := ReadFrame(br, buf)
		if err != nil {
			return err
		}
		buf = payload[:cap(payload)]
		switch kind := payload[0]; kind {
		case kindReset:
			inSnap = true
			snapRecs = nil
		case kindBatch:
			var b batchMsg
			if _, err := decodeMsg(payload, &b); err != nil {
				return err
			}
			if inSnap {
				snapRecs = append(snapRecs, b.Recs...)
				continue
			}
			f.connected.Store(true)
			// The tail stream carries every committed record in
			// sequence order. Records at or below the cursor are the
			// snapshot/tail overlap (safe duplicates); past it the
			// stream must be contiguous — a hole means a frame was
			// lost, and applying past it would silently diverge.
			check := cursor
			for _, rec := range b.Recs {
				if rec.Seq <= check {
					continue
				}
				if rec.Seq != check+1 {
					f.gaps.Add(1)
					return fmt.Errorf("repl: sequence gap in tail (have %d, got %d); resyncing", check, rec.Seq)
				}
				check++
			}
			if check == cursor {
				continue // pure overlap, already durable here
			}
			if err := f.j.AppendReplica(ctx, b.Recs); err != nil {
				return fmt.Errorf("repl: apply batch: %w", err)
			}
			f.recordsApplied.Add(check - cursor)
			cursor = check
			f.lastSeq.Store(cursor)
			if b.TraceID != "" {
				f.lastTrace.Store(b.TraceID)
			}
			if err := sendAck(); err != nil {
				return err
			}
		case kindSnapDone:
			var done snapDoneMsg
			if _, err := decodeMsg(payload, &done); err != nil {
				return err
			}
			if !inSnap {
				return fmt.Errorf("%w: snapdone outside snapshot", ErrBadMessage)
			}
			// done.LastSeq can sit past the snapshot's highest record
			// (deletes prune their chip's records *and* themselves);
			// adopting it keeps this journal's numbering tracking the
			// primary's, and stops a trailing-delete snapshot from
			// flagging the next tail record as a gap.
			if err := f.j.ResetTo(snapRecs, done.LastSeq); err != nil {
				return fmt.Errorf("repl: reset to snapshot: %w", err)
			}
			f.snapshots.Add(1)
			cursor = f.j.Stats().LastSeq
			f.lastSeq.Store(cursor)
			inSnap = false
			snapRecs = nil
			f.connected.Store(true)
			f.log.Info("snapshot applied", "records", f.j.Stats().Records, "seq", cursor)
			if err := sendAck(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected kind %d", ErrBadMessage, kind)
		}
	}
}

// Connected reports whether a session is live and past its snapshot.
func (f *Follower) Connected() bool { return f.connected.Load() }

// Journal exposes the follower's journal (read-side: promotion tests,
// checksum audits).
func (f *Follower) Journal() *journal.Journal { return f.j }

// ReplStats snapshots the follower's counters.
func (f *Follower) ReplStats() *Stats {
	trace, _ := f.lastTrace.Load().(string)
	return &Stats{
		Role:           "follower",
		Connected:      f.connected.Load(),
		LastSeq:        f.lastSeq.Load(),
		Snapshots:      f.snapshots.Load(),
		Connects:       f.connects.Load(),
		Disconnects:    f.disconnects.Load(),
		RecordsApplied: f.recordsApplied.Load(),
		Gaps:           f.gaps.Load(),
		PrimaryAddr:    f.cfg.PrimaryAddr,
		LastTraceID:    trace,
	}
}

// Stop ends the tailing loop and waits for it. The journal stays open.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// Close stops tailing and closes the journal — the handoff point of a
// promotion: after Close, store.Open on the data directory replays the
// replicated history into a servable store.
func (f *Follower) Close() error {
	f.Stop()
	return f.j.Close()
}
