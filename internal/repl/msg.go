package repl

import (
	"encoding/json"
	"fmt"

	"selfheal/internal/store"
)

// Message kinds. A frame's payload is one kind byte followed by the
// message's JSON encoding.
const (
	kindHello    byte = 1 // follower → primary: identify + last durable seq
	kindReset    byte = 2 // primary → follower: full snapshot begins
	kindBatch    byte = 3 // primary → follower: records (snapshot chunk or live tail)
	kindSnapDone byte = 4 // primary → follower: snapshot complete
	kindAck      byte = 5 // follower → primary: cumulative durable seq
)

// ErrBadMessage is returned for a frame whose payload is empty or whose
// JSON body does not decode — protocol corruption that survives the
// CRC (e.g. a version-skewed peer). It forces a reconnect.
var ErrBadMessage = fmt.Errorf("repl: malformed message")

// helloMsg opens a session. LastSeq is informational (every session
// resyncs from a full snapshot; see the package comment), surfaced in
// the primary's logs to show how far behind a reconnecting follower was.
type helloMsg struct {
	NodeID  string `json:"node_id"`
	LastSeq uint64 `json:"last_seq"`
}

// resetMsg announces a full snapshot: the follower must discard its
// history and accumulate batches until snapDoneMsg.
type resetMsg struct {
	LastSeq uint64 `json:"last_seq"` // primary's durable seq at snapshot time
}

// batchMsg carries records — snapshot chunks before snapDoneMsg, the
// live committed tail after. TraceID tags live tail batches with the
// distributed trace id of the newest traced record inside, so a
// mutation's trace can be followed across the replication hop (the
// follower surfaces it as Stats.LastTraceID; the records themselves
// also carry their ids durably). Old peers ignore the field.
type batchMsg struct {
	Recs    []store.Record `json:"recs"`
	TraceID string         `json:"trace_id,omitempty"`
}

// snapDoneMsg closes the snapshot phase.
type snapDoneMsg struct {
	LastSeq uint64 `json:"last_seq"` // highest seq included in the snapshot
}

// ackMsg is the follower's cumulative durability cursor: every record
// with Seq <= Seq is fsync'd in the follower's journal.
type ackMsg struct {
	Seq uint64 `json:"seq"`
}

// encodeMsg renders one kind-prefixed JSON payload.
func encodeMsg(kind byte, msg any) ([]byte, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("repl: encode message kind %d: %w", kind, err)
	}
	out := make([]byte, 0, len(body)+1)
	out = append(out, kind)
	return append(out, body...), nil
}

// decodeMsg splits a payload into its kind and decodes the JSON body
// into msg (which may be nil to inspect only the kind).
func decodeMsg(payload []byte, msg any) (byte, error) {
	if len(payload) == 0 {
		return 0, fmt.Errorf("%w: empty payload", ErrBadMessage)
	}
	kind := payload[0]
	if msg != nil {
		if err := json.Unmarshal(payload[1:], msg); err != nil {
			return kind, fmt.Errorf("%w: kind %d: %v", ErrBadMessage, kind, err)
		}
	}
	return kind, nil
}
