package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"selfheal/internal/store"
)

// Mode selects the primary's acknowledgement contract.
type Mode string

const (
	// ModeAsync acknowledges after local group commit; the follower
	// tails best-effort. A primary crash can lose the un-replicated
	// tail.
	ModeAsync Mode = "async"
	// ModeSemiSync acknowledges only after local group commit plus a
	// follower's durable ack — killing the primary loses zero
	// acknowledged mutations. With no follower connected, mutations are
	// refused (per-shard degraded mode) rather than silently downgraded.
	ModeSemiSync Mode = "semisync"
)

// ParseMode parses a -repl-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeAsync, ModeSemiSync:
		return Mode(s), nil
	}
	return "", fmt.Errorf("repl: unknown mode %q (want async or semisync)", s)
}

// Typed replication errors. Both surface to the fleet as commit
// failures, which the serve layer maps to a 503 "degraded" and which
// trip the per-shard write gate; the gate's probe then polls
// Primary.Probe until a follower is back.
var (
	// ErrNoFollower refuses a semisync mutation before anything is
	// written: the shard is degraded, nothing is lost.
	ErrNoFollower = errors.New("repl: no follower connected")
	// ErrAckTimeout fails a semisync mutation after local commit: the
	// operation is durable on this node but its replication was not
	// confirmed — the caller must treat it as indeterminate.
	ErrAckTimeout = errors.New("repl: follower ack timeout")
)

// SendHook intercepts every outbound tail frame — the network
// fault-injection seam (see faults.Injector.ReplSendHook). It may drop
// the frame (the follower detects the sequence gap and resyncs), delay
// it, or fail the connection outright (a partition).
type SendHook func(size int) (drop bool, delay time.Duration, err error)

// Journal is what the primary needs from the local journal: the
// store.Log surface it re-exports, plus the commit-order callback that
// feeds the replication stream.
type Journal interface {
	store.Log
	SetOnCommit(fn func(batch []store.Record))
}

// PrimaryConfig tunes a replication primary.
type PrimaryConfig struct {
	NodeID     string
	Mode       Mode          // default ModeAsync
	AckTimeout time.Duration // semisync follower-ack wait; default 3s
	QueueDepth int           // per-follower commit batches buffered; default 1024
	SendHook   SendHook      // optional fault seam for tail frames
	Logger     *slog.Logger
}

// snapshotBatch is the record count per snapshot chunk frame; 512
// records keep each frame far below MaxFrame.
const snapshotBatch = 512

// ackWaiter blocks one semisync append until the follower's cumulative
// ack reaches seq.
type ackWaiter struct {
	seq uint64
	ch  chan struct{}
}

// Primary wraps a journal as a store.Log and streams every committed
// batch to connected followers. It plugs into store.NewJournaled
// unchanged — the fleet cannot tell it is replicated.
type Primary struct {
	inner Journal
	cfg   PrimaryConfig
	log   *slog.Logger

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*pconn]struct{}
	closed bool

	ackMu   sync.Mutex
	acked   uint64 // follower's cumulative durable seq (max across followers)
	waiters []*ackWaiter

	lastCommitted atomic.Uint64 // newest locally durable seq (from onCommit)

	ackWait ackHist // semisync follower-ack wait latency

	framesSent    atomic.Uint64
	recordsSent   atomic.Uint64
	acksReceived  atomic.Uint64
	ackTimeouts   atomic.Uint64
	refused       atomic.Uint64
	snapshots     atomic.Uint64
	connects      atomic.Uint64
	disconnects   atomic.Uint64
	droppedFrames atomic.Uint64
	queueKills    atomic.Uint64
}

// pconn is one connected follower.
type pconn struct {
	c         net.Conn
	peer      string
	queue     chan []store.Record
	closed    chan struct{}
	closeOnce sync.Once
}

func (pc *pconn) shutdown() {
	pc.closeOnce.Do(func() {
		close(pc.closed)
		pc.c.Close()
	})
}

// NewPrimary wraps inner. The journal's commit callback is claimed by
// the primary; callers must not SetOnCommit afterwards.
func NewPrimary(inner Journal, cfg PrimaryConfig) *Primary {
	if cfg.Mode == "" {
		cfg.Mode = ModeAsync
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 3 * time.Second
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	p := &Primary{
		inner: inner,
		cfg:   cfg,
		log:   cfg.Logger.With("component", "repl", "role", "primary"),
		conns: make(map[*pconn]struct{}),
	}
	p.lastCommitted.Store(inner.Stats().LastSeq)
	inner.SetOnCommit(p.onCommit)
	return p
}

// onCommit runs on the journal's group-commit path, in commit order:
// fan the batch out to every follower queue, then publish the new
// durable frontier that semisync appends wait on. A follower whose
// queue is full is cut loose — it reconnects and resyncs from a fresh
// snapshot, which is cheaper than stalling every commit behind it.
func (p *Primary) onCommit(batch []store.Record) {
	if len(batch) == 0 {
		return
	}
	maxSeq := batch[len(batch)-1].Seq
	p.mu.Lock()
	for pc := range p.conns {
		select {
		case pc.queue <- batch:
		case <-pc.closed:
		default:
			p.queueKills.Add(1)
			p.log.Warn("follower queue overflow; dropping connection", "peer", pc.peer)
			pc.shutdown()
		}
	}
	p.mu.Unlock()
	for {
		cur := p.lastCommitted.Load()
		if maxSeq <= cur || p.lastCommitted.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
}

// Append implements store.Log. In semisync mode it refuses before
// writing when no follower is connected (degraded, nothing lost) and
// waits for the follower's durable ack after the local commit.
func (p *Primary) Append(ctx context.Context, rec store.Record) error {
	if p.cfg.Mode == ModeSemiSync && !p.hasFollower() {
		p.refused.Add(1)
		return ErrNoFollower
	}
	if err := p.inner.Append(ctx, rec); err != nil {
		return err
	}
	if p.cfg.Mode == ModeSemiSync {
		// lastCommitted is ≥ this record's seq (onCommit ran before the
		// append returned), so waiting for it is a safe overapproximation.
		start := time.Now()
		if err := p.waitAcked(p.lastCommitted.Load()); err != nil {
			return fmt.Errorf("repl: mutation durable locally but replication unconfirmed: %w", err)
		}
		p.ackWait.observe(time.Since(start))
	}
	return nil
}

func (p *Primary) waitAcked(seq uint64) error {
	p.ackMu.Lock()
	if p.acked >= seq {
		p.ackMu.Unlock()
		return nil
	}
	w := &ackWaiter{seq: seq, ch: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	p.ackMu.Unlock()
	t := time.NewTimer(p.cfg.AckTimeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return nil
	case <-t.C:
		p.ackTimeouts.Add(1)
		p.ackMu.Lock()
		for i, o := range p.waiters {
			if o == w {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				break
			}
		}
		p.ackMu.Unlock()
		return ErrAckTimeout
	}
}

func (p *Primary) advanceAcked(seq uint64) {
	p.ackMu.Lock()
	if seq > p.acked {
		p.acked = seq
	}
	keep := p.waiters[:0]
	for _, w := range p.waiters {
		if w.seq <= p.acked {
			close(w.ch)
		} else {
			keep = append(keep, w)
		}
	}
	p.waiters = keep
	p.ackMu.Unlock()
}

func (p *Primary) hasFollower() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns) > 0
}

// Records implements store.Log.
func (p *Primary) Records() []store.Record { return p.inner.Records() }

// Stats implements store.Log (the journal's counters; replication
// counters are ReplStats).
func (p *Primary) Stats() store.Stats { return p.inner.Stats() }

// Probe implements store.Log: the shard can accept writes only if the
// journal is healthy and — in semisync — a follower is connected. The
// serve layer's degraded-mode supervisor polls this, so losing the
// follower makes exactly this shard read-only and its return restores
// writes automatically.
func (p *Primary) Probe() error {
	if err := p.inner.Probe(); err != nil {
		return err
	}
	if p.cfg.Mode == ModeSemiSync && !p.hasFollower() {
		return fmt.Errorf("%w (semisync requires one)", ErrNoFollower)
	}
	return nil
}

// Serve accepts follower connections on ln until Close. Run it in its
// own goroutine.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return errors.New("repl: primary is closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("repl: accept: %w", err)
		}
		go p.handleConn(c)
	}
}

func (p *Primary) handleConn(c net.Conn) {
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(c, nil)
	if err != nil {
		c.Close()
		return
	}
	var hello helloMsg
	kind, err := decodeMsg(payload, &hello)
	if err != nil || kind != kindHello {
		p.log.Warn("rejecting connection with bad handshake", "err", err)
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})

	pc := &pconn{
		c:      c,
		peer:   hello.NodeID,
		queue:  make(chan []store.Record, p.cfg.QueueDepth),
		closed: make(chan struct{}),
	}
	// Register before snapshotting: every batch committed after this
	// point is queued, and the snapshot covers everything before, so no
	// record can fall between them (overlap is deduped by seq).
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.conns[pc] = struct{}{}
	p.mu.Unlock()
	p.connects.Add(1)
	snapSeq := p.inner.Stats().LastSeq
	snap := p.inner.Records()
	p.log.Info("follower connected; streaming snapshot",
		"peer", pc.peer, "follower_seq", hello.LastSeq, "snapshot_records", len(snap), "snapshot_seq", snapSeq)

	defer func() {
		p.mu.Lock()
		delete(p.conns, pc)
		p.mu.Unlock()
		pc.shutdown()
		p.disconnects.Add(1)
		p.log.Info("follower disconnected", "peer", pc.peer)
	}()

	// Reader: the follower's cumulative acks release semisync waiters.
	go func() {
		var buf []byte
		for {
			payload, err := ReadFrame(c, buf)
			if err != nil {
				pc.shutdown()
				return
			}
			buf = payload[:cap(payload)]
			var ack ackMsg
			if kind, err := decodeMsg(payload, &ack); err != nil || kind != kindAck {
				pc.shutdown()
				return
			}
			p.acksReceived.Add(1)
			p.advanceAcked(ack.Seq)
		}
	}()

	bw := bufio.NewWriterSize(c, 64*1024)
	if err := p.sendSnapshot(bw, snap, snapSeq); err != nil {
		p.log.Warn("snapshot stream failed", "peer", pc.peer, "err", err)
		return
	}
	p.snapshots.Add(1)
	for {
		select {
		case <-pc.closed:
			return
		case batch := <-pc.queue:
			if err := p.sendMsg(bw, kindBatch, batchMsg{Recs: batch, TraceID: batchTraceID(batch)}, true); err != nil {
				p.log.Warn("tail stream failed", "peer", pc.peer, "err", err)
				return
			}
			p.recordsSent.Add(uint64(len(batch)))
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// batchTraceID picks the tag for a live tail batch: the trace id of
// the newest record that carries one (engine epoch records and other
// untraced writes carry none).
func batchTraceID(batch []store.Record) string {
	for i := len(batch) - 1; i >= 0; i-- {
		if batch[i].Trace != "" {
			return batch[i].Trace
		}
	}
	return ""
}

// sendSnapshot writes reset + chunked records + snapdone. Snapshot and
// control frames bypass the fault seam (see sendMsg).
func (p *Primary) sendSnapshot(bw *bufio.Writer, snap []store.Record, snapSeq uint64) error {
	if err := p.sendMsg(bw, kindReset, resetMsg{LastSeq: snapSeq}, false); err != nil {
		return err
	}
	for start := 0; start < len(snap); start += snapshotBatch {
		end := start + snapshotBatch
		if end > len(snap) {
			end = len(snap)
		}
		if err := p.sendMsg(bw, kindBatch, batchMsg{Recs: snap[start:end]}, false); err != nil {
			return err
		}
		p.recordsSent.Add(uint64(end - start))
	}
	if err := p.sendMsg(bw, kindSnapDone, snapDoneMsg{LastSeq: snapSeq}, false); err != nil {
		return err
	}
	return bw.Flush()
}

// sendMsg encodes and frames one message, running the fault seam for
// tail frames (droppable=true): a dropped tail frame is a sequence gap
// the follower detects and repairs by resyncing, and a partition error
// cuts the stream. Snapshot and control frames bypass the seam — a
// silently incomplete snapshot would be undetectable divergence, not a
// testable fault.
func (p *Primary) sendMsg(w *bufio.Writer, kind byte, msg any, droppable bool) error {
	payload, err := encodeMsg(kind, msg)
	if err != nil {
		return err
	}
	if h := p.cfg.SendHook; h != nil && droppable {
		drop, delay, herr := h(len(payload))
		if delay > 0 {
			time.Sleep(delay)
		}
		if herr != nil {
			return herr
		}
		if drop {
			p.droppedFrames.Add(1)
			return nil
		}
	}
	if err := WriteFrame(w, payload); err != nil {
		return err
	}
	p.framesSent.Add(1)
	return nil
}

// ReplStats snapshots the replication counters for /v1/cluster and the
// repl_* Prometheus series.
func (p *Primary) ReplStats() *Stats {
	p.mu.Lock()
	followers := len(p.conns)
	p.mu.Unlock()
	p.ackMu.Lock()
	acked := p.acked
	p.ackMu.Unlock()
	last := p.lastCommitted.Load()
	st := &Stats{
		Role:          "primary",
		Mode:          string(p.cfg.Mode),
		Followers:     followers,
		Connected:     followers > 0,
		LastSeq:       last,
		AckedSeq:      acked,
		FramesSent:    p.framesSent.Load(),
		RecordsSent:   p.recordsSent.Load(),
		AcksReceived:  p.acksReceived.Load(),
		AckTimeouts:   p.ackTimeouts.Load(),
		Refused:       p.refused.Load(),
		Snapshots:     p.snapshots.Load(),
		Connects:      p.connects.Load(),
		Disconnects:   p.disconnects.Load(),
		DroppedFrames: p.droppedFrames.Load(),
		QueueKills:    p.queueKills.Load(),
	}
	if last > acked {
		st.LagRecords = last - acked
	}
	if p.cfg.Mode == ModeSemiSync {
		st.AckWait = p.ackWait.snapshot()
	}
	return st
}

// Close stops accepting, drops every follower, and closes the journal.
func (p *Primary) Close() error {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	conns := make([]*pconn, 0, len(p.conns))
	for pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, pc := range conns {
		pc.shutdown()
	}
	return p.inner.Close()
}

// Stats is a role-tagged snapshot of replication state, shared by
// primaries and followers (unused fields stay zero).
type Stats struct {
	Role           string `json:"role"` // "primary" | "follower"
	Mode           string `json:"mode,omitempty"`
	Followers      int    `json:"followers,omitempty"`
	Connected      bool   `json:"connected"`
	LastSeq        uint64 `json:"last_seq"`
	AckedSeq       uint64 `json:"acked_seq,omitempty"`
	LagRecords     uint64 `json:"lag_records,omitempty"`
	FramesSent     uint64 `json:"frames_sent,omitempty"`
	RecordsSent    uint64 `json:"records_sent,omitempty"`
	AcksReceived   uint64 `json:"acks_received,omitempty"`
	AckTimeouts    uint64 `json:"ack_timeouts,omitempty"`
	Refused        uint64 `json:"refused,omitempty"`
	Snapshots      uint64 `json:"snapshots,omitempty"`
	Connects       uint64 `json:"connects,omitempty"`
	Disconnects    uint64 `json:"disconnects,omitempty"`
	DroppedFrames  uint64 `json:"dropped_frames,omitempty"`
	QueueKills     uint64 `json:"queue_kills,omitempty"`
	RecordsApplied uint64 `json:"records_applied,omitempty"`
	Gaps           uint64 `json:"gaps,omitempty"`
	PrimaryAddr    string `json:"primary_addr,omitempty"`
	// AckWait is the semisync primary's follower-ack latency histogram
	// (nil for async primaries and followers).
	AckWait *HistStats `json:"ack_wait,omitempty"`
	// LastTraceID is the follower's view of the newest traced batch it
	// applied — the replication end of a distributed trace.
	LastTraceID string `json:"last_trace_id,omitempty"`
}
