package repl

import (
	"strconv"
	"sync/atomic"
	"time"
)

// ackWaitBounds are the semisync follower-ack latency histogram's
// bucket upper bounds in seconds, sized for LAN round trips: the fast
// path (follower already acked when Append checks) lands in the first
// bucket, a healthy same-rack ack within a few, and anything in the
// tail buckets means the follower is struggling long before the
// AckTimeout counter fires.
var ackWaitBounds = [...]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5}

// ackHist is a lock-free fixed-bucket latency histogram. Buckets are
// non-cumulative per-bucket counts (the last slot is +Inf); snapshots
// render them cumulative, Prometheus-style.
type ackHist struct {
	buckets [len(ackWaitBounds) + 1]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64
}

func (h *ackHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(ackWaitBounds) && sec > ackWaitBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// HistBucket is one cumulative histogram bucket: Count observations at
// or below the LE bound ("+Inf" for the last).
type HistBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistStats is a snapshot of a latency histogram, JSON-friendly and
// directly renderable as a Prometheus histogram.
type HistStats struct {
	Count      uint64       `json:"count"`
	SumSeconds float64      `json:"sum_seconds"`
	Buckets    []HistBucket `json:"buckets"`
}

// snapshot renders the histogram cumulatively. Concurrent observes may
// land between bucket loads; the totals are monotone so scrapes stay
// consistent enough for rate() math.
func (h *ackHist) snapshot() *HistStats {
	st := &HistStats{
		Count:      h.count.Load(),
		SumSeconds: float64(h.sumNS.Load()) / float64(time.Second),
		Buckets:    make([]HistBucket, 0, len(h.buckets)),
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(ackWaitBounds) {
			le = strconv.FormatFloat(ackWaitBounds[i], 'g', -1, 64)
		}
		st.Buckets = append(st.Buckets, HistBucket{LE: le, Count: cum})
	}
	return st
}
