package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var b bytes.Buffer
	payloads := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xab}, 100_000),
	}
	for _, p := range payloads {
		if err := WriteFrame(&b, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	var buf []byte
	for i, want := range payloads {
		got, err := ReadFrame(&b, buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame #%d: got %d bytes, want %d", i, len(got), len(want))
		}
		buf = got[:cap(got)]
	}
	if _, err := ReadFrame(&b, buf); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrame(&b, []byte("some payload")); err != nil {
		t.Fatal(err)
	}
	full := b.Bytes()
	// Every proper prefix (except the empty one, which is clean EOF)
	// must be a typed truncation.
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]), nil)
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrFrameTruncated", cut, err)
		}
	}
}

func TestFrameCorruptCRC(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrame(&b, []byte("some payload")); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()
	for _, flip := range []int{4, 8, len(raw) - 1} { // crc byte, payload bytes
		mut := append([]byte(nil), raw...)
		mut[flip] ^= 0x01
		_, err := ReadFrame(bytes.NewReader(mut), nil)
		if !errors.Is(err, ErrFrameChecksum) {
			t.Fatalf("flip byte %d: err = %v, want ErrFrameChecksum", flip, err)
		}
	}
}

func TestFrameOversized(t *testing.T) {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], MaxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteFrame oversize: %v, want ErrFrameTooLarge", err)
	}
}

// FuzzReplFrame feeds arbitrary bytes to the frame reader: any input
// must yield either a valid frame (which re-encodes to the same bytes)
// or a typed error — never a panic, and never an allocation driven by
// an unvalidated length prefix.
func FuzzReplFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, []byte(`{"seq":1,"op":"create","id":"x"}`))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})                               // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})       // oversized length
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})                   // empty payload, bad crc
	f.Add(append(seed.Bytes()[:len(seed.Bytes())-1], 0xee)) // corrupt tail

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			payload, err := ReadFrame(r, buf)
			if err != nil {
				if err == io.EOF ||
					errors.Is(err, ErrFrameTruncated) ||
					errors.Is(err, ErrFrameChecksum) ||
					errors.Is(err, ErrFrameTooLarge) {
					return
				}
				t.Fatalf("untyped error: %v", err)
			}
			if len(payload) > MaxFrame {
				t.Fatalf("payload of %d bytes exceeds MaxFrame", len(payload))
			}
			// A frame the reader accepts must survive a round trip.
			var out bytes.Buffer
			if err := WriteFrame(&out, payload); err != nil {
				t.Fatalf("re-encode accepted frame: %v", err)
			}
			re, err := ReadFrame(&out, nil)
			if err != nil || !bytes.Equal(re, payload) {
				t.Fatalf("round trip mismatch: %v", err)
			}
			buf = payload[:cap(payload)]
		}
	})
}

func TestFrameHeaderLayout(t *testing.T) {
	var b bytes.Buffer
	payload := []byte("abc")
	if err := WriteFrame(&b, payload); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()
	if got := binary.BigEndian.Uint32(raw[0:4]); got != 3 {
		t.Fatalf("length prefix = %d", got)
	}
	if got := binary.BigEndian.Uint32(raw[4:8]); got != crc32.ChecksumIEEE(payload) {
		t.Fatalf("crc = %08x", got)
	}
}
