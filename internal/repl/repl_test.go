package repl

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"selfheal/internal/journal"
	"selfheal/internal/store"
)

// historyChecksum hashes a record history; two journals with equal
// checksums replay to bit-identical fleets.
func historyChecksum(t *testing.T, recs []store.Record) [32]byte {
	t.Helper()
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

func startPrimary(t *testing.T, mode Mode, hook SendHook) (*Primary, string) {
	t.Helper()
	j, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	p := NewPrimary(j, PrimaryConfig{NodeID: "prim", Mode: mode, AckTimeout: 2 * time.Second, SendHook: hook})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go p.Serve(ln)
	t.Cleanup(func() { p.Close() })
	return p, ln.Addr().String()
}

func startFollower(t *testing.T, dir, addr string) *Follower {
	t.Helper()
	fj, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	f := NewFollower(fj, FollowerConfig{NodeID: "fol", PrimaryAddr: addr, RetryMin: 10 * time.Millisecond, RetryMax: 200 * time.Millisecond})
	f.Start()
	t.Cleanup(func() { f.Close() })
	return f
}

// waitConverged polls until the follower's journal matches the
// primary's live history exactly.
func waitConverged(t *testing.T, p *Primary, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		want := historyChecksum(t, p.Records())
		got := historyChecksum(t, f.Journal().Records())
		if want == got && p.Stats().LastSeq == f.Journal().Stats().LastSeq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: primary %d recs seq %d, follower %d recs seq %d",
				len(p.Records()), p.Stats().LastSeq, len(f.Journal().Records()), f.Journal().Stats().LastSeq)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func crec(id string, seed uint64) store.Record {
	return store.Record{Op: store.OpCreate, ID: id, Seed: seed, Kind: "lut"}
}

func TestReplicationSnapshotAndTail(t *testing.T) {
	p, addr := startPrimary(t, ModeAsync, nil)
	ctx := context.Background()
	// History before the follower exists — arrives via snapshot.
	for i := 0; i < 20; i++ {
		if err := p.Append(ctx, crec(fmt.Sprintf("pre-%d", i), uint64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	f := startFollower(t, t.TempDir(), addr)
	waitConverged(t, p, f)
	// Live tail after the snapshot.
	for i := 0; i < 30; i++ {
		if err := p.Append(ctx, store.Record{Op: store.OpStress, ID: fmt.Sprintf("pre-%d", i%20), Hours: 1, TempC: 80, Vdd: 1.0}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	waitConverged(t, p, f)
	if st := f.ReplStats(); st.Snapshots != 1 || !st.Connected {
		t.Fatalf("follower stats: %+v", st)
	}
	if st := p.ReplStats(); st.Followers != 1 || st.RecordsSent == 0 {
		t.Fatalf("primary stats: %+v", st)
	}
}

func TestFollowerLateJoinAfterCompaction(t *testing.T) {
	p, addr := startPrimary(t, ModeAsync, nil)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := p.Append(ctx, crec(fmt.Sprintf("chip-%d", i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Deletes prune history; compaction folds the rest into the
	// snapshot. A late joiner must see the *compacted* state, and the
	// tail must continue from the primary's (higher) seq numbering.
	if err := p.Append(ctx, store.Record{Op: store.OpDelete, ID: "chip-3"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(ctx, store.Record{Op: store.OpDelete, ID: "chip-7"}); err != nil {
		t.Fatal(err)
	}
	f := startFollower(t, t.TempDir(), addr)
	waitConverged(t, p, f)
	for _, rec := range f.Journal().Records() {
		if rec.ID == "chip-3" || rec.ID == "chip-7" {
			t.Fatalf("deleted chip leaked into follower: %+v", rec)
		}
	}
	if err := p.Append(ctx, store.Record{Op: store.OpStress, ID: "chip-1", Hours: 2}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p, f)
}

func TestFollowerReconnectConverges(t *testing.T) {
	p, addr := startPrimary(t, ModeAsync, nil)
	ctx := context.Background()
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		if err := p.Append(ctx, crec(fmt.Sprintf("c%d", i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	f := startFollower(t, dir, addr)
	waitConverged(t, p, f)
	// Partition: the follower goes away entirely while the primary
	// keeps mutating (including a delete, so the resync must shrink
	// the follower's history, not just extend it).
	f.Close()
	for i := 0; i < 5; i++ {
		if err := p.Append(ctx, store.Record{Op: store.OpStress, ID: "c1", Hours: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Append(ctx, store.Record{Op: store.OpDelete, ID: "c2"}); err != nil {
		t.Fatal(err)
	}
	waitDisconnected(t, p)
	// Rejoin on the same data directory, as after a follower restart.
	f2 := startFollower(t, dir, addr)
	waitConverged(t, p, f2)
	if st := f2.ReplStats(); st.Snapshots != 1 {
		t.Fatalf("reconnect did not resync: %+v", st)
	}
}

func waitDisconnected(t *testing.T, p *Primary) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.hasFollower() {
		if time.Now().After(deadline) {
			t.Fatal("primary never noticed the follower leaving")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSemiSyncGating(t *testing.T) {
	p, addr := startPrimary(t, ModeSemiSync, nil)
	ctx := context.Background()
	// No follower: refuse before writing anything.
	if err := p.Append(ctx, crec("x", 1)); !errors.Is(err, ErrNoFollower) {
		t.Fatalf("append without follower: %v, want ErrNoFollower", err)
	}
	if len(p.Records()) != 0 {
		t.Fatal("refused append left a record behind")
	}
	if err := p.Probe(); !errors.Is(err, ErrNoFollower) {
		t.Fatalf("probe without follower: %v, want ErrNoFollower", err)
	}
	if st := p.ReplStats(); st.Refused == 0 {
		t.Fatalf("refused counter not bumped: %+v", st)
	}

	f := startFollower(t, t.TempDir(), addr)
	// Wait until the primary sees the connection; then semisync
	// appends must succeed and be follower-durable by return.
	deadline := time.Now().Add(5 * time.Second)
	for !p.hasFollower() {
		if time.Now().After(deadline) {
			t.Fatal("follower never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Probe(); err != nil {
		t.Fatalf("probe with follower: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Append(ctx, crec(fmt.Sprintf("y%d", i), uint64(i))); err != nil {
			t.Fatalf("semisync append: %v", err)
		}
	}
	// The semisync contract: at the moment Append returned, the
	// follower had durably acked — no polling needed for the seqs.
	if got, want := f.Journal().Stats().LastSeq, p.Stats().LastSeq; got < want {
		t.Fatalf("follower seq %d behind primary %d after acked semisync appends", got, want)
	}
	waitConverged(t, p, f)

	// Follower loss re-degrades the shard.
	f.Close()
	waitDisconnected(t, p)
	if err := p.Append(ctx, crec("z", 99)); !errors.Is(err, ErrNoFollower) {
		t.Fatalf("append after follower loss: %v, want ErrNoFollower", err)
	}
}

func TestDroppedFrameForcesResync(t *testing.T) {
	var drops atomic.Int64
	drops.Store(1) // drop exactly one tail frame
	hook := func(size int) (bool, time.Duration, error) {
		if drops.Add(-1) >= 0 {
			return true, 0, nil
		}
		return false, 0, nil
	}
	p, addr := startPrimary(t, ModeAsync, hook)
	ctx := context.Background()
	if err := p.Append(ctx, crec("seed", 1)); err != nil {
		t.Fatal(err)
	}
	f := startFollower(t, t.TempDir(), addr)
	waitConverged(t, p, f)
	// These tail frames hit the drop fault; the follower must detect
	// the gap and resync rather than silently diverge.
	for i := 0; i < 10; i++ {
		if err := p.Append(ctx, store.Record{Op: store.OpStress, ID: "seed", Hours: 1}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, p, f)
	if st := f.ReplStats(); st.Gaps == 0 || st.Snapshots < 2 {
		t.Fatalf("expected a gap-driven resync: %+v", st)
	}
	if st := p.ReplStats(); st.DroppedFrames == 0 {
		t.Fatalf("drop hook never fired: %+v", st)
	}
}

func TestPrimaryAckTimeoutSurfacesTyped(t *testing.T) {
	// A partition hook that blackholes every tail frame after the
	// snapshot: the follower stays connected but acks never advance, so
	// a semisync append must fail with ErrAckTimeout after local commit.
	hook := func(size int) (bool, time.Duration, error) {
		return true, 0, nil
	}
	j, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(j, PrimaryConfig{NodeID: "prim", Mode: ModeSemiSync, AckTimeout: 300 * time.Millisecond, SendHook: hook})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	defer p.Close()
	f := startFollower(t, t.TempDir(), ln.Addr().String())
	deadline := time.Now().Add(5 * time.Second)
	for !f.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("follower never finished snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	err = p.Append(context.Background(), crec("x", 1))
	if !errors.Is(err, ErrAckTimeout) {
		t.Fatalf("append under blackhole: %v, want ErrAckTimeout", err)
	}
	// The record is locally durable — indeterminate, not lost.
	if len(p.Records()) != 1 {
		t.Fatalf("locally committed record missing: %+v", p.Records())
	}
}
