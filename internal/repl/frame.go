// Package repl streams a node's journal to a follower so a shard can
// be promoted after a crash with exact replay. The primary wraps the
// journal as a store.Log: every durably committed batch is fanned out
// to connected followers, and in semisync mode a mutation is
// acknowledged only after local group commit *plus* a follower ack. The
// follower tails the stream into its own journal, preserving the
// primary's sequence numbers bit-for-bit; promotion is then an ordinary
// store.Open of the follower's data directory.
//
// Every (re)connect starts with a full snapshot: compaction prunes
// records on the primary (deletes erase a chip's history), so an
// incremental catch-up from an old seq could resurrect pruned state.
// The snapshot/tail overlap is harmless — the follower dedups by
// sequence number — and a gap in the tail (a frame lost to a network
// fault) forces a reconnect, which is again a full resync. The
// convergence invariant: absorbing the primary's compacted prefix and
// then its tail yields the same live history as absorbing the full
// history, so the follower's journal is bit-identical to what the
// primary would replay.
//
// repl sits outside the canonical lock hierarchy (see internal/store):
// the primary's internal locks are leaves (no journal or store call is
// made while holding them), and the journal's commit callback only
// enqueues to buffered per-connection channels.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrame bounds one frame's payload. The largest legitimate frame is
// a snapshot chunk of snapshotBatch records; 4 MiB leaves an order of
// magnitude of headroom. A length prefix past the bound is rejected
// *before* any allocation, so a corrupt or hostile peer cannot make the
// reader allocate unboundedly.
const MaxFrame = 4 << 20

// Typed frame errors. Readers distinguish a clean end of stream
// (io.EOF before any header byte) from a stream that died mid-frame
// (ErrFrameTruncated) and from corruption (ErrFrameChecksum,
// ErrFrameTooLarge); all three force a reconnect and full resync.
var (
	ErrFrameTooLarge  = errors.New("repl: frame length exceeds maximum")
	ErrFrameChecksum  = errors.New("repl: frame checksum mismatch")
	ErrFrameTruncated = errors.New("repl: truncated frame")
)

// frameHeaderSize is the wire prefix: 4-byte big-endian payload length
// followed by 4-byte big-endian CRC32 (IEEE) of the payload.
const frameHeaderSize = 8

// WriteFrame writes one length-prefixed CRC-framed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w (%d > %d)", ErrFrameTooLarge, len(payload), MaxFrame)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("repl: write frame header: %w", err)
	}
	if len(payload) == 0 {
		return nil
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("repl: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame, reusing buf when it is large enough. A
// clean close between frames returns io.EOF; a stream cut mid-frame
// returns ErrFrameTruncated; a length prefix past MaxFrame returns
// ErrFrameTooLarge without allocating; a payload that fails its CRC
// returns ErrFrameChecksum.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: header: %v", ErrFrameTruncated, err)
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	if length > MaxFrame {
		return nil, fmt.Errorf("%w (%d > %d)", ErrFrameTooLarge, length, MaxFrame)
	}
	payload := buf
	if uint32(cap(payload)) < length {
		payload = make([]byte, length)
	}
	payload = payload[:length]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrFrameTruncated, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w (stored %08x, computed %08x)", ErrFrameChecksum, want, got)
	}
	return payload, nil
}
