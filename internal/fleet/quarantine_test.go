package fleet

import (
	"context"
	"errors"
	"testing"

	"selfheal/internal/store"
)

func TestQuarantineLifecycle(t *testing.T) {
	ctx := context.Background()
	s := newTestService(t)
	for _, spec := range []CreateSpec{
		{ID: "c0", Seed: 7},
		{ID: "m0", Seed: 3, Kind: KindMonitored},
	} {
		if _, err := s.Create(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}

	changed, err := s.Quarantine(ctx, "c0", "aging-rate outlier")
	if err != nil || !changed {
		t.Fatalf("Quarantine = (%v, %v), want (true, nil)", changed, err)
	}
	// Idempotent: a second quarantine is a no-op, not a new journal record.
	if changed, err = s.Quarantine(ctx, "c0", "again"); err != nil || changed {
		t.Fatalf("repeat Quarantine = (%v, %v), want (false, nil)", changed, err)
	}
	if !s.Quarantined("c0") || s.Quarantined("m0") || s.Quarantined("ghost") {
		t.Fatal("quarantine flags wrong")
	}
	if ids := s.QuarantinedIDs(); len(ids) != 1 || ids[0] != "c0" {
		t.Fatalf("QuarantinedIDs = %v", ids)
	}

	// Every mutation refuses with QuarantinedError; reads keep serving.
	var qe QuarantinedError
	if _, err := s.Stress(ctx, "c0", PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1}); !errors.As(err, &qe) {
		t.Fatalf("stress on quarantined = %v", err)
	}
	if qe.ID != "c0" || qe.Reason != "aging-rate outlier" {
		t.Fatalf("QuarantinedError = %+v", qe)
	}
	if _, err := s.Rejuvenate(ctx, "c0", PhaseRequest{TempC: 85, Vdd: -0.3, Hours: 1}); !errors.As(err, &qe) {
		t.Fatalf("rejuvenate on quarantined = %v", err)
	}
	if _, err := s.Measure(ctx, "c0"); !errors.As(err, &qe) {
		t.Fatalf("measure on quarantined = %v", err)
	}
	if _, ok := s.Get("c0"); !ok {
		t.Fatal("quarantined chip vanished from reads")
	}
	if u, ok := s.Usage()["c0"]; !ok || u.Kind != KindBench {
		t.Fatal("usage read on quarantined chip failed")
	}

	// Unquarantined chips are untouched.
	if _, err := s.Odometer(ctx, "m0"); err != nil {
		t.Fatalf("odometer on clean chip: %v", err)
	}

	if changed, err = s.Release(ctx, "c0"); err != nil || !changed {
		t.Fatalf("Release = (%v, %v), want (true, nil)", changed, err)
	}
	if changed, err = s.Release(ctx, "c0"); err != nil || changed {
		t.Fatalf("repeat Release = (%v, %v), want (false, nil)", changed, err)
	}
	if _, err := s.Stress(ctx, "c0", PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1}); err != nil {
		t.Fatalf("stress after release: %v", err)
	}

	// Missing chips are NotFoundError.
	if _, err := s.Quarantine(ctx, "ghost", "x"); !errors.As(err, &NotFoundError{}) {
		t.Fatalf("quarantine ghost = %v", err)
	}
	if _, err := s.Release(ctx, "ghost"); !errors.As(err, &NotFoundError{}) {
		t.Fatalf("release ghost = %v", err)
	}
}

// TestQuarantineReplay restarts a durable fleet mid-quarantine and
// checks the quarantine set (and reasons) come back exactly: chips
// quarantined at shutdown still refuse mutations, released ones serve.
func TestQuarantineReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	st1, _, err := store.Open[*ChipEntry](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewService(st1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"q0", "q1", "ok0"} {
		if _, err := s1.Create(ctx, CreateSpec{ID: id, Seed: 11}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.Stress(ctx, "q0", PhaseRequest{TempC: 110, Vdd: 1.32, Hours: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Quarantine(ctx, "q0", "adversary"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Quarantine(ctx, "q1", "budget"); err != nil {
		t.Fatal(err)
	}
	// q1 went through a full quarantine→release cycle; only q0 stays.
	if _, err := s1.Release(ctx, "q1"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, _, err := store.Open[*ChipEntry](dir, store.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewService(st2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if ids := s2.QuarantinedIDs(); len(ids) != 1 || ids[0] != "q0" {
		t.Fatalf("replayed QuarantinedIDs = %v, want [q0]", ids)
	}
	var qe QuarantinedError
	if _, err := s2.Stress(ctx, "q0", PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1}); !errors.As(err, &qe) {
		t.Fatalf("stress on replayed quarantined chip = %v", err)
	}
	if qe.Reason != "adversary" {
		t.Fatalf("replayed reason = %q, want %q", qe.Reason, "adversary")
	}
	for _, id := range []string{"q1", "ok0"} {
		if _, err := s2.Stress(ctx, id, PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1}); err != nil {
			t.Fatalf("stress on %s after replay: %v", id, err)
		}
	}
}
