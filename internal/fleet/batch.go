package fleet

import (
	"context"
	"fmt"
	"sync"

	"selfheal/internal/obs"
)

// Batch op names accepted by OpSpec.Op.
const (
	BatchOpStress     = "stress"
	BatchOpRejuvenate = "rejuvenate"
	BatchOpMeasure    = "measure"
	BatchOpOdometer   = "odometer"
)

// OpSpec is one item of a mixed-operation batch: an op name, the
// target chip, and (for the phase ops) the embedded phase parameters.
type OpSpec struct {
	Op string `json:"op"`
	ID string `json:"id"`
	PhaseRequest
}

// CreateResult reports one item of a bulk create. Exactly one of Chip
// and Error is set; Err carries the typed error for in-process callers
// (the transport layer uses it to spot durability failures). Code,
// when present, is a machine-readable classification of the failure —
// currently only CodeCanceled, marking an item that was never run and
// is safe to retry.
type CreateResult struct {
	ID    string        `json:"id"`
	Chip  *ChipResponse `json:"chip,omitempty"`
	Error string        `json:"error,omitempty"`
	Code  string        `json:"code,omitempty"`
	Err   error         `json:"-"`
}

// OpResult reports one item of a mixed-operation batch. On success the
// field matching the op is set (Phase for stress/rejuvenate, Reading
// for measure, Odometer for odometer); on failure Error carries the
// message and Err the typed error.
type OpResult struct {
	Op       string            `json:"op"`
	ID       string            `json:"id"`
	Phase    *PhaseResponse    `json:"phase,omitempty"`
	Reading  *ReadingResponse  `json:"reading,omitempty"`
	Odometer *OdometerResponse `json:"odometer,omitempty"`
	Error    string            `json:"error,omitempty"`
	Code     string            `json:"code,omitempty"`
	Err      error             `json:"-"`
}

// CreateBatch fabricates many chips concurrently on the bounded worker
// pool. Items fail independently: results[i] corresponds to specs[i],
// and a failed item never blocks the rest. On a durable fleet the
// concurrent commits share group-committed fsyncs in the store's log.
// A cancelled ctx stops scheduling new items; already-running items
// finish and unstarted ones report the context error.
func (s *Service) CreateBatch(ctx context.Context, specs []CreateSpec) []CreateResult {
	bctx, batch := obs.StartSpan(ctx, "fleet.batch",
		obs.String("kind", "create"), obs.Int("items", len(specs)))
	defer batch.End()
	results := make([]CreateResult, len(specs))
	s.runBatch(bctx, batch, len(specs), func(ictx context.Context, i int) {
		res := CreateResult{ID: specs[i].ID}
		chip, err := s.Create(ictx, specs[i])
		if err != nil {
			res.Err = err
			res.Error = err.Error()
		} else {
			res.Chip = &chip
		}
		results[i] = res
	}, func(i int, err error) {
		cerr := CanceledError{Err: err}
		results[i] = CreateResult{ID: specs[i].ID, Err: cerr, Error: cerr.Error(), Code: CodeCanceled}
	})
	return results
}

// ApplyBatch runs a mixed stress/rejuvenate/measure/odometer batch
// concurrently on the bounded worker pool. Sharded storage lets items
// targeting different chips proceed in parallel; items targeting the
// same chip serialize on its lock in scheduling order. Partial-failure
// and cancellation semantics match CreateBatch.
func (s *Service) ApplyBatch(ctx context.Context, specs []OpSpec) []OpResult {
	bctx, batch := obs.StartSpan(ctx, "fleet.batch",
		obs.String("kind", "ops"), obs.Int("items", len(specs)))
	defer batch.End()
	results := make([]OpResult, len(specs))
	s.runBatch(bctx, batch, len(specs), func(ictx context.Context, i int) {
		results[i] = s.applyOp(ictx, specs[i])
	}, func(i int, err error) {
		cerr := CanceledError{Err: err}
		results[i] = OpResult{Op: specs[i].Op, ID: specs[i].ID, Err: cerr, Error: cerr.Error(), Code: CodeCanceled}
	})
	return results
}

// applyOp dispatches one batch item to the matching chip operation.
func (s *Service) applyOp(ctx context.Context, spec OpSpec) OpResult {
	res := OpResult{Op: spec.Op, ID: spec.ID}
	var err error
	switch spec.Op {
	case BatchOpStress:
		var phase PhaseResponse
		if phase, err = s.Stress(ctx, spec.ID, spec.PhaseRequest); err == nil {
			res.Phase = &phase
		}
	case BatchOpRejuvenate:
		var phase PhaseResponse
		if phase, err = s.Rejuvenate(ctx, spec.ID, spec.PhaseRequest); err == nil {
			res.Phase = &phase
		}
	case BatchOpMeasure:
		var reading ReadingResponse
		if reading, err = s.Measure(ctx, spec.ID); err == nil {
			res.Reading = &reading
		}
	case BatchOpOdometer:
		var odo OdometerResponse
		if odo, err = s.Odometer(ctx, spec.ID); err == nil {
			res.Odometer = &odo
		}
	default:
		err = fmt.Errorf("fleet: unknown batch op %q (want %q, %q, %q or %q)",
			spec.Op, BatchOpStress, BatchOpRejuvenate, BatchOpMeasure, BatchOpOdometer)
	}
	if err != nil {
		res.Err = err
		res.Error = err.Error()
	}
	return res
}

// runBatch fans n items out over the worker pool. run(ictx, i)
// executes item i under a batch.item span (carried by ictx, so the
// item's chip-lock/store/journal spans nest beneath it, labeled with
// the worker that picked it up — the pool's scheduling made visible);
// skip(i, err) records an item that was never scheduled because ctx
// was cancelled first. Every index gets exactly one of the two calls.
func (s *Service) runBatch(ctx context.Context, batch *obs.Span, n int, run func(ictx context.Context, i int), skip func(i int, err error)) {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return
	}
	batch.Annotate(obs.Int("workers", workers))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				ictx, isp := obs.StartSpan(ctx, "batch.item",
					obs.Int("index", i), obs.Int("worker", w))
				run(ictx, i)
				isp.End()
			}
		}(w)
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				skip(j, ctx.Err())
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
}
