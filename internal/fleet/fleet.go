// Package fleet is the domain layer of the fleet aging service: it
// owns the registered chips (ChipEntry), their lifecycle (fabricate,
// stress, rejuvenate, measure, retire) and the batch operation
// pipeline, on top of a pluggable store (internal/store) that decides
// whether the fleet is durable. The HTTP layer (internal/serve) is
// pure transport over the Service type here; nothing in this package
// knows about routes, status codes, or middleware.
//
// Concurrency model: each chip carries its own mutex, so operations on
// different chips run in parallel while operations on the same chip
// serialize (a die can only live through one history). The store's
// shard locks sit strictly below chip locks in the lock hierarchy —
// see the internal/store package comment, which is the single place
// the order is defined.
//
// Durability model: mutating operations commit a store record while
// the chip's lock is still held, so the persisted order always matches
// the applied order and replay (NewService) reconstructs the exact
// aged state, RNG streams included.
package fleet

import "selfheal"

// Chip kinds accepted by CreateSpec.
const (
	// KindBench is a Chip on the paper's external measurement bench
	// (thermal chamber, counter read-out, delay traces).
	KindBench = "bench"
	// KindMonitored is a MonitoredChip: the bare die with an on-die
	// Silicon-Odometer differential sensor.
	KindMonitored = "monitored"
)

// CreateSpec fabricates a chip into the fleet. Kind defaults to
// "bench"; the seed fixes process variation and noise, so the same
// (seed, kind) always yields an identical chip. It doubles as the
// POST /v1/chips wire body.
type CreateSpec struct {
	ID   string `json:"id"`
	Seed uint64 `json:"seed"`
	Kind string `json:"kind,omitempty"`
}

// ChipResponse describes one registered chip.
type ChipResponse struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// FreshDelayNS is the post-burn-in CUT delay (bench chips only).
	FreshDelayNS float64 `json:"fresh_delay_ns,omitempty"`
}

// ChipUsage is a snapshot of one chip's accumulated history, exported
// under /metrics. The Last* fields retain the most recent sensor
// read-out — the software analog of the paper's ring-oscillator
// telemetry — and are nil/zero until the matching sensor has been
// read (bench chips report delay/degradation-%, monitored chips
// beat-frequency/degradation-ppm).
type ChipUsage struct {
	Kind          string  `json:"kind"`
	StressSeconds float64 `json:"stress_seconds"`
	HealSeconds   float64 `json:"heal_seconds"`
	Ops           uint64  `json:"ops"`

	LastDelayNS        float64  `json:"last_delay_ns,omitempty"`
	LastDegradationPct *float64 `json:"last_degradation_pct,omitempty"`
	LastBeatHz         float64  `json:"last_beat_hz,omitempty"`
	LastDegradationPPM *float64 `json:"last_degradation_ppm,omitempty"`
}

// PhaseRequest drives a stress or rejuvenation phase. TempC/Vdd name
// the condition; for stress the rail must be positive, for
// rejuvenation ≤ 0 (0 = gated, negative = accelerated recovery).
// SampleHours > 0 asks bench chips for a delay trace.
type PhaseRequest struct {
	TempC       float64 `json:"temp_c"`
	Vdd         float64 `json:"vdd"`
	AC          bool    `json:"ac,omitempty"`
	Hours       float64 `json:"hours"`
	SampleHours float64 `json:"sample_hours,omitempty"`
}

// TracePoint is one sample of a bench chip's delay trace.
type TracePoint struct {
	Hours   float64 `json:"hours"`
	DelayNS float64 `json:"delay_ns"`
}

// PhaseResponse reports a completed stress or rejuvenation phase.
type PhaseResponse struct {
	ID    string       `json:"id"`
	Phase string       `json:"phase"`
	Hours float64      `json:"hours"`
	Trace []TracePoint `json:"trace,omitempty"`
}

// ReadingResponse is a bench chip's ring-oscillator measurement.
type ReadingResponse struct {
	ID             string  `json:"id"`
	Counts         int     `json:"counts"`
	FrequencyHz    float64 `json:"frequency_hz"`
	DelayNS        float64 `json:"delay_ns"`
	DegradationPct float64 `json:"degradation_pct"`
}

// OdometerResponse is a monitored chip's differential sensor read-out.
type OdometerResponse struct {
	ID             string  `json:"id"`
	BeatHz         float64 `json:"beat_hz"`
	DegradationPPM float64 `json:"degradation_ppm"`
}

// NewTracePoints converts a library delay trace to the wire form.
func NewTracePoints(trace []selfheal.TracePoint) []TracePoint {
	if len(trace) == 0 {
		return nil
	}
	out := make([]TracePoint, len(trace))
	for i, p := range trace {
		out[i] = TracePoint{Hours: p.Hours, DelayNS: p.DelayNS}
	}
	return out
}
