package fleet

import (
	"errors"
	"fmt"
)

// DuplicateError reports a create against an id that is already
// registered (the transport layer maps it to 409).
type DuplicateError struct{ ID string }

func (e DuplicateError) Error() string {
	return fmt.Sprintf("fleet: chip %q already exists", e.ID)
}

// NotFoundError marks a missing (or just-deleted) chip — a 404.
type NotFoundError struct{ ID string }

func (e NotFoundError) Error() string {
	return fmt.Sprintf("fleet: no chip %q in the fleet", e.ID)
}

// NotDurableError wraps a store-commit failure — the storage wearing
// out, not a bug. For create and delete the operation was rolled back
// and can be retried; for phases the in-memory state advanced but will
// not survive a restart.
type NotDurableError struct {
	Op  string
	Err error
}

func (e NotDurableError) Error() string {
	return fmt.Sprintf("fleet: %s could not be committed: %v", e.Op, e.Err)
}

func (e NotDurableError) Unwrap() error { return e.Err }

// ErrKindMismatch marks a sensor read against the wrong chip kind.
var ErrKindMismatch = errors.New("wrong chip kind")
