package fleet

import (
	"errors"
	"fmt"
)

// DuplicateError reports a create against an id that is already
// registered (the transport layer maps it to 409).
type DuplicateError struct{ ID string }

func (e DuplicateError) Error() string {
	return fmt.Sprintf("fleet: chip %q already exists", e.ID)
}

// NotFoundError marks a missing (or just-deleted) chip — a 404.
type NotFoundError struct{ ID string }

func (e NotFoundError) Error() string {
	return fmt.Sprintf("fleet: no chip %q in the fleet", e.ID)
}

// QuarantinedError marks a mutation against a chip the guard has
// quarantined: the chip is still registered and readable, but aging
// operations are refused until the guard releases it (the transport
// layer maps this to 503 with code "quarantined" and a Retry-After,
// the per-chip analogue of the fleet-wide degraded gate).
type QuarantinedError struct {
	ID     string
	Reason string
}

func (e QuarantinedError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("fleet: chip %q is quarantined (%s)", e.ID, e.Reason)
	}
	return fmt.Sprintf("fleet: chip %q is quarantined", e.ID)
}

// NotDurableError wraps a store-commit failure — the storage wearing
// out, not a bug. For create and delete the operation was rolled back
// and can be retried; for phases the in-memory state advanced but will
// not survive a restart.
type NotDurableError struct {
	Op  string
	Err error
}

func (e NotDurableError) Error() string {
	return fmt.Sprintf("fleet: %s could not be committed: %v", e.Op, e.Err)
}

func (e NotDurableError) Unwrap() error { return e.Err }

// CanceledError marks a batch item that was never executed because the
// batch's context was cancelled before it was scheduled. The chip was
// not touched, so the item is always safe to retry — unlike a generic
// failure, where the operation may have half-happened (e.g. a
// NotDurableError phase). Engine-enqueued batches rely on the
// distinction to retry cancelled items blindly.
type CanceledError struct{ Err error }

func (e CanceledError) Error() string {
	return fmt.Sprintf("fleet: batch item not run: %v", e.Err)
}

func (e CanceledError) Unwrap() error { return e.Err }

// CodeCanceled is the machine-readable per-item result code matching
// CanceledError, carried on CreateResult/OpResult and through the
// transport layer's batch responses.
const CodeCanceled = "canceled"

// ErrKindMismatch marks a sensor read against the wrong chip kind.
var ErrKindMismatch = errors.New("wrong chip kind")
