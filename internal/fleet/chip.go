package fleet

import (
	"context"
	"fmt"
	"sync"

	"selfheal"
	"selfheal/internal/obs"
)

// ChipEntry is one registered chip plus its usage accounting. Each
// entry carries its own mutex, at the top of the lock hierarchy (see
// internal/store): stress/rejuvenate/measure on *different* chips run
// in parallel while operations on the *same* chip serialize.
//
// Mutating methods take a commit callback — the store commit. It runs
// while the per-chip lock is still held, so the persisted record order
// always matches the order the operations were applied in — the
// invariant replay depends on. A nil commit (replay, or a non-durable
// store) applies the operation in memory only.
type ChipEntry struct {
	id   string
	kind string

	mu      sync.Mutex // guards the simulated die and the fields below
	deleted bool       // set by Delete; later ops see 404, not stale state
	bench   *selfheal.Chip
	mon     *selfheal.MonitoredChip

	// quarantined is set by the guard (journaled, so it survives a
	// restart): mutations are refused with QuarantinedError while reads
	// of already-materialized state (Info, usage) keep serving.
	quarantined bool
	quarReason  string

	stressSeconds float64
	healSeconds   float64
	ops           uint64

	// Most recent sensor read-outs, retained for the telemetry
	// exposition (nil until the matching sensor has been read).
	lastMeasure  *measureReading
	lastOdometer *odometerReading
}

type measureReading struct {
	delayNS        float64
	degradationPct float64
}

type odometerReading struct {
	beatHz         float64
	degradationPPM float64
}

// newChipEntry fabricates the simulated die for a spec. Fabrication is
// deterministic in (id, seed, kind) and runs without any locks held.
func newChipEntry(spec CreateSpec) (*ChipEntry, error) {
	kind := spec.Kind
	if kind == "" {
		kind = KindBench
	}
	entry := &ChipEntry{id: spec.ID, kind: kind}
	switch kind {
	case KindBench:
		chip, err := selfheal.NewChip(spec.ID, spec.Seed)
		if err != nil {
			return nil, err
		}
		entry.bench = chip
	case KindMonitored:
		chip, err := selfheal.NewMonitoredChip(spec.ID, spec.Seed)
		if err != nil {
			return nil, err
		}
		entry.mon = chip
	default:
		return nil, fmt.Errorf("fleet: unknown chip kind %q (want %q or %q)", kind, KindBench, KindMonitored)
	}
	return entry, nil
}

// ID returns the chip's registered id.
func (e *ChipEntry) ID() string { return e.id }

// Info describes the chip without touching its simulated state.
func (e *ChipEntry) Info() ChipResponse {
	resp := ChipResponse{ID: e.id, Kind: e.kind}
	if e.bench != nil {
		resp.FreshDelayNS = e.bench.FreshDelayNS()
	}
	return resp
}

// usage snapshots the accumulated history under the chip lock.
func (e *ChipEntry) usage() ChipUsage {
	e.mu.Lock()
	defer e.mu.Unlock()
	u := ChipUsage{
		Kind:          e.kind,
		StressSeconds: e.stressSeconds,
		HealSeconds:   e.healSeconds,
		Ops:           e.ops,
	}
	if m := e.lastMeasure; m != nil {
		u.LastDelayNS = m.delayNS
		pct := m.degradationPct
		u.LastDegradationPct = &pct
	}
	if o := e.lastOdometer; o != nil {
		u.LastBeatHz = o.beatHz
		ppm := o.degradationPPM
		u.LastDegradationPPM = &ppm
	}
	return u
}

// Quarantined reports the chip's quarantine state and reason.
func (e *ChipEntry) Quarantined() (bool, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.quarantined, e.quarReason
}

// setQuarantined flips the quarantine state under the chip lock,
// committing the transition before the lock is released (same record-
// order invariant as the aging mutations). It is idempotent: a repeat
// transition changes nothing and commits nothing, so the journal holds
// one record per actual state change. A failed commit rolls the flip
// back, making a retry safe. The first return reports whether the
// state changed.
func (e *ChipEntry) setQuarantined(ctx context.Context, v bool, reason string, commit func() error) (bool, error) {
	e.lock(ctx)
	defer e.mu.Unlock()
	if e.deleted {
		return false, NotFoundError{ID: e.id}
	}
	if e.quarantined == v {
		return false, nil
	}
	prevReason := e.quarReason
	e.quarantined = v
	e.quarReason = reason
	if !v {
		e.quarReason = ""
	}
	if commit != nil {
		if err := commit(); err != nil {
			e.quarantined = !v
			e.quarReason = prevReason
			op := "quarantine"
			if !v {
				op = "release"
			}
			return false, NotDurableError{Op: op, Err: err}
		}
	}
	return true, nil
}

// lock acquires the per-chip mutex, recording the wait as a chip.lock
// span when ctx carries a trace — the contention a batch hammering one
// chip shows up as, distinct from fsync or compute time.
func (e *ChipEntry) lock(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "chip.lock", obs.String("chip_id", e.id))
	e.mu.Lock()
	sp.End()
}

// Stress ages the chip under its per-chip lock and commits the store
// record before the lock is released. A commit failure is reported as
// NotDurableError: the in-memory state has advanced (aging cannot be
// rolled back) but the operation will not survive a restart.
func (e *ChipEntry) Stress(ctx context.Context, req PhaseRequest, commit func() error) (PhaseResponse, error) {
	cond := selfheal.StressCondition{TempC: req.TempC, Vdd: req.Vdd, AC: req.AC}
	e.lock(ctx)
	defer e.mu.Unlock()
	if e.deleted {
		return PhaseResponse{}, NotFoundError{ID: e.id}
	}
	if e.quarantined {
		return PhaseResponse{}, QuarantinedError{ID: e.id, Reason: e.quarReason}
	}
	_, sim := obs.StartSpan(ctx, "chip.stress", obs.String("chip_id", e.id))
	resp := PhaseResponse{ID: e.id, Phase: "stress", Hours: req.Hours}
	if e.bench != nil {
		trace, err := e.bench.Stress(cond, req.Hours, req.SampleHours)
		if err != nil {
			sim.SetError(err)
			sim.End()
			return PhaseResponse{}, err
		}
		resp.Trace = NewTracePoints(trace)
	} else if err := e.mon.Stress(cond, req.Hours); err != nil {
		sim.SetError(err)
		sim.End()
		return PhaseResponse{}, err
	}
	sim.End()
	e.stressSeconds += req.Hours * 3600
	e.ops++
	if commit != nil {
		if err := commit(); err != nil {
			return PhaseResponse{}, NotDurableError{Op: "stress", Err: err}
		}
	}
	return resp, nil
}

// Rejuvenate heals the chip under its per-chip lock; commit semantics
// match Stress.
func (e *ChipEntry) Rejuvenate(ctx context.Context, req PhaseRequest, commit func() error) (PhaseResponse, error) {
	cond := selfheal.SleepCondition{TempC: req.TempC, Vdd: req.Vdd}
	e.lock(ctx)
	defer e.mu.Unlock()
	if e.deleted {
		return PhaseResponse{}, NotFoundError{ID: e.id}
	}
	if e.quarantined {
		return PhaseResponse{}, QuarantinedError{ID: e.id, Reason: e.quarReason}
	}
	_, sim := obs.StartSpan(ctx, "chip.rejuvenate", obs.String("chip_id", e.id))
	resp := PhaseResponse{ID: e.id, Phase: "rejuvenate", Hours: req.Hours}
	if e.bench != nil {
		trace, err := e.bench.Rejuvenate(cond, req.Hours, req.SampleHours)
		if err != nil {
			sim.SetError(err)
			sim.End()
			return PhaseResponse{}, err
		}
		resp.Trace = NewTracePoints(trace)
	} else if err := e.mon.Rejuvenate(cond, req.Hours); err != nil {
		sim.SetError(err)
		sim.End()
		return PhaseResponse{}, err
	}
	sim.End()
	e.healSeconds += req.Hours * 3600
	e.ops++
	if commit != nil {
		if err := commit(); err != nil {
			return PhaseResponse{}, NotDurableError{Op: "rejuvenate", Err: err}
		}
	}
	return resp, nil
}

// Measure reads a bench chip's ring-oscillator sensor. The read is a
// mutation in disguise — sampling ages the die and consumes noise
// draws — so it commits through the store like the phase operations.
func (e *ChipEntry) Measure(ctx context.Context, commit func() error) (ReadingResponse, error) {
	e.lock(ctx)
	defer e.mu.Unlock()
	if e.deleted {
		return ReadingResponse{}, NotFoundError{ID: e.id}
	}
	if e.quarantined {
		// Sensor reads are mutations in disguise (they age the die and
		// are journaled), so quarantine refuses them too; the reads that
		// keep serving are the ones over already-materialized state.
		return ReadingResponse{}, QuarantinedError{ID: e.id, Reason: e.quarReason}
	}
	if e.bench == nil {
		return ReadingResponse{}, fmt.Errorf(
			"fleet: chip %q is %q — use /odometer for its on-die sensor: %w", e.id, e.kind, ErrKindMismatch)
	}
	_, sim := obs.StartSpan(ctx, "chip.measure", obs.String("chip_id", e.id))
	r, err := e.bench.Measure()
	sim.SetError(err)
	sim.End()
	if err != nil {
		return ReadingResponse{}, err
	}
	e.ops++
	e.lastMeasure = &measureReading{delayNS: r.DelayNS, degradationPct: r.DegradationPct}
	if commit != nil {
		if err := commit(); err != nil {
			return ReadingResponse{}, NotDurableError{Op: "measure", Err: err}
		}
	}
	return ReadingResponse{
		ID:             e.id,
		Counts:         r.Counts,
		FrequencyHz:    r.FrequencyHz,
		DelayNS:        r.DelayNS,
		DegradationPct: r.DegradationPct,
	}, nil
}

// Odometer reads a monitored chip's differential aging sensor; commit
// semantics match Measure.
func (e *ChipEntry) Odometer(ctx context.Context, commit func() error) (OdometerResponse, error) {
	e.lock(ctx)
	defer e.mu.Unlock()
	if e.deleted {
		return OdometerResponse{}, NotFoundError{ID: e.id}
	}
	if e.quarantined {
		return OdometerResponse{}, QuarantinedError{ID: e.id, Reason: e.quarReason}
	}
	if e.mon == nil {
		return OdometerResponse{}, fmt.Errorf(
			"fleet: chip %q is %q — use /measure for its bench read-out: %w", e.id, e.kind, ErrKindMismatch)
	}
	_, sim := obs.StartSpan(ctx, "chip.odometer", obs.String("chip_id", e.id))
	r, err := e.mon.Read()
	sim.SetError(err)
	sim.End()
	if err != nil {
		return OdometerResponse{}, err
	}
	e.ops++
	e.lastOdometer = &odometerReading{beatHz: r.BeatHz, degradationPPM: r.DegradationPPM}
	if commit != nil {
		if err := commit(); err != nil {
			return OdometerResponse{}, NotDurableError{Op: "odometer", Err: err}
		}
	}
	return OdometerResponse{ID: e.id, BeatHz: r.BeatHz, DegradationPPM: r.DegradationPPM}, nil
}
