package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"selfheal/internal/store"
)

func newTestService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	s, err := NewService(store.NewMem[*ChipEntry](), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLifecycle(t *testing.T) {
	s := newTestService(t)
	chip, err := s.Create(context.Background(), CreateSpec{ID: "c0", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if chip.ID != "c0" || chip.Kind != KindBench || chip.FreshDelayNS <= 0 {
		t.Fatalf("create = %+v", chip)
	}
	if _, err := s.Create(context.Background(), CreateSpec{ID: "c0", Seed: 7}); !errors.As(err, &DuplicateError{}) {
		t.Fatalf("duplicate create error = %v", err)
	}
	if _, err := s.Create(context.Background(), CreateSpec{ID: "m0", Seed: 3, Kind: KindMonitored}); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Stress(context.Background(), "c0", PhaseRequest{TempC: 110, Vdd: 1.32, AC: true, Hours: 24}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rejuvenate(context.Background(), "c0", PhaseRequest{TempC: 110, Vdd: -0.3, Hours: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Measure(context.Background(), "c0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Odometer(context.Background(), "m0"); err != nil {
		t.Fatal(err)
	}
	// Sensor reads against the wrong kind are kind mismatches.
	if _, err := s.Measure(context.Background(), "m0"); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("measure on monitored = %v", err)
	}
	if _, err := s.Odometer(context.Background(), "c0"); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("odometer on bench = %v", err)
	}
	// Missing chips are NotFoundError everywhere.
	if _, err := s.Stress(context.Background(), "ghost", PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 1}); !errors.As(err, &NotFoundError{}) {
		t.Fatalf("stress on ghost = %v", err)
	}

	list := s.List()
	if len(list) != 2 || list[0].ID != "c0" || list[1].ID != "m0" {
		t.Fatalf("list = %+v", list)
	}
	usage := s.Usage()
	if u := usage["c0"]; u.StressSeconds != 24*3600 || u.HealSeconds != 6*3600 || u.Ops != 3 {
		t.Fatalf("usage[c0] = %+v", u)
	}

	existed, err := s.Delete(context.Background(), "c0")
	if err != nil || !existed {
		t.Fatalf("delete = %v, %v", existed, err)
	}
	if existed, _ := s.Delete(context.Background(), "c0"); existed {
		t.Fatal("second delete reported the chip existed")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// hookStore overrides Commit/Durable on an inner store — both a test
// double for commit failures and a proof that alternative persistence
// backends plug in behind the Store interface without the fleet layer
// noticing.
type hookStore struct {
	Store
	commit func(store.Record) error
}

func (h *hookStore) Commit(_ context.Context, rec store.Record) error { return h.commit(rec) }
func (h *hookStore) Durable() bool                                    { return true }

// TestCreateRollbackVisibleToWaiters pins the create-rollback race: a
// request that looks the entry up while the create's commit is in
// flight and blocks on the chip lock must observe the rollback (not
// found) when the commit fails — if it instead committed its own
// operation, the history would hold a stress record for a chip with no
// create record and every subsequent replay would fail.
func TestCreateRollbackVisibleToWaiters(t *testing.T) {
	inCommit := make(chan struct{})
	waiterReady := make(chan struct{})
	waiterErr := make(chan error, 1)

	hs := &hookStore{Store: store.NewMem[*ChipEntry]()}
	s, err := NewService(hs)
	if err != nil {
		t.Fatal(err)
	}
	hs.commit = func(rec store.Record) error {
		if rec.Op != store.OpCreate {
			return nil
		}
		close(inCommit)
		<-waiterReady
		time.Sleep(10 * time.Millisecond) // let the waiter reach entry.mu
		return errors.New("injected commit failure")
	}

	go func() {
		<-inCommit
		e, ok := s.Get("c0")
		if !ok {
			waiterErr <- errors.New("chip not visible during commit")
			return
		}
		close(waiterReady)
		// Blocks on the chip lock until Create's rollback releases it.
		_, err := e.Stress(context.Background(), PhaseRequest{TempC: 100, Vdd: 0.9, Hours: 1}, nil)
		waiterErr <- err
	}()

	_, err = s.Create(context.Background(), CreateSpec{ID: "c0", Seed: 1, Kind: KindBench})
	if !errors.As(err, &NotDurableError{}) {
		t.Fatalf("Create error = %v, want NotDurableError", err)
	}
	if werr := <-waiterErr; !errors.As(werr, &NotFoundError{}) {
		t.Fatalf("waiter Stress error = %v, want NotFoundError (rollback must be visible)", werr)
	}
	if _, ok := s.Get("c0"); ok {
		t.Fatal("chip still registered after rollback")
	}
}

// TestFleetShardCollisionHammer drives concurrent create/delete/stress/
// measure/list traffic onto chip ids that all hash to one store shard,
// under -race. This is the fleet-level assertion of the lock hierarchy
// documented in internal/store: chip locks are taken above shard locks,
// and iteration visitors (List, Usage) take chip locks only after the
// shard lock is released.
func TestFleetShardCollisionHammer(t *testing.T) {
	s := newTestService(t)
	anchor := "hammer"
	want := store.ShardOf(anchor)
	var ids []string
	for i := 0; len(ids) < 6; i++ {
		id := fmt.Sprintf("%s-%d", anchor, i)
		if store.ShardOf(id) == want {
			ids = append(ids, id)
		}
		if i > 100000 {
			t.Fatal("could not build colliding id set")
		}
	}

	const workers = 6
	const rounds = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := ids[w%len(ids)]
			for i := 0; i < rounds; i++ {
				switch i % 5 {
				case 0:
					s.Create(context.Background(), CreateSpec{ID: id, Seed: uint64(w + 1)})
				case 1:
					s.Stress(context.Background(), id, PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 0.1})
				case 2:
					s.Measure(context.Background(), id)
				case 3:
					s.Usage() // visitor takes chip locks under ForEach
				case 4:
					s.Delete(context.Background(), id)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCreateBatchPartialFailure(t *testing.T) {
	s := newTestService(t, WithBatchWorkers(4))
	if _, err := s.Create(context.Background(), CreateSpec{ID: "taken", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	specs := []CreateSpec{
		{ID: "a", Seed: 1},
		{ID: "taken", Seed: 2},              // duplicate
		{ID: "b", Seed: 3, Kind: "quantum"}, // unknown kind
		{ID: "c", Seed: 4, Kind: KindMonitored},
	}
	results := s.CreateBatch(context.Background(), specs)
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i, res := range results {
		if res.ID != specs[i].ID {
			t.Fatalf("results[%d].ID = %q, want %q (order must match input)", i, res.ID, specs[i].ID)
		}
	}
	if results[0].Err != nil || results[0].Chip == nil {
		t.Fatalf("results[0] = %+v", results[0])
	}
	if !errors.As(results[1].Err, &DuplicateError{}) || results[1].Error == "" {
		t.Fatalf("results[1] = %+v", results[1])
	}
	if results[2].Err == nil {
		t.Fatalf("results[2] = %+v", results[2])
	}
	if results[3].Err != nil || results[3].Chip == nil || results[3].Chip.Kind != KindMonitored {
		t.Fatalf("results[3] = %+v", results[3])
	}
	// The failures didn't block the successes.
	if s.Len() != 3 {
		t.Fatalf("fleet size = %d, want 3", s.Len())
	}
}

func TestApplyBatchMixedOps(t *testing.T) {
	s := newTestService(t)
	if _, err := s.Create(context.Background(), CreateSpec{ID: "c0", Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(context.Background(), CreateSpec{ID: "m0", Seed: 3, Kind: KindMonitored}); err != nil {
		t.Fatal(err)
	}
	ops := []OpSpec{
		{Op: BatchOpStress, ID: "c0", PhaseRequest: PhaseRequest{TempC: 110, Vdd: 1.32, Hours: 24}},
		{Op: BatchOpMeasure, ID: "c0"},
		{Op: BatchOpStress, ID: "m0", PhaseRequest: PhaseRequest{TempC: 85, Vdd: 1.2, Hours: 48}},
		{Op: BatchOpOdometer, ID: "m0"},
		{Op: BatchOpRejuvenate, ID: "ghost", PhaseRequest: PhaseRequest{TempC: 110, Vdd: -0.3, Hours: 6}},
		{Op: "teleport", ID: "c0"},
	}
	results := s.ApplyBatch(context.Background(), ops)
	if len(results) != len(ops) {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[0].Phase == nil || results[0].Phase.Phase != "stress" {
		t.Fatalf("results[0] = %+v", results[0])
	}
	if results[1].Err != nil || results[1].Reading == nil {
		t.Fatalf("results[1] = %+v", results[1])
	}
	if results[2].Err != nil || results[2].Phase == nil {
		t.Fatalf("results[2] = %+v", results[2])
	}
	if results[3].Err != nil || results[3].Odometer == nil {
		t.Fatalf("results[3] = %+v", results[3])
	}
	if !errors.As(results[4].Err, &NotFoundError{}) {
		t.Fatalf("results[4] = %+v", results[4])
	}
	if results[5].Err == nil || results[5].Error == "" {
		t.Fatalf("results[5] = %+v", results[5])
	}
}

// TestApplyBatchDeterministicPerChip: items targeting the same chip in
// one batch serialize on its lock, so a single-chip batch's effect is
// the same as issuing the ops sequentially — the property that keeps
// batches replayable.
func TestApplyBatchDeterministicPerChip(t *testing.T) {
	sequential := newTestService(t)
	batched := newTestService(t, WithBatchWorkers(8))
	for _, s := range []*Service{sequential, batched} {
		if _, err := s.Create(context.Background(), CreateSpec{ID: "c0", Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	phase := PhaseRequest{TempC: 110, Vdd: 1.32, Hours: 5}
	for i := 0; i < 4; i++ {
		if _, err := sequential.Stress(context.Background(), "c0", phase); err != nil {
			t.Fatal(err)
		}
	}
	ops := make([]OpSpec, 4)
	for i := range ops {
		ops[i] = OpSpec{Op: BatchOpStress, ID: "c0", PhaseRequest: phase}
	}
	for _, res := range batched.ApplyBatch(context.Background(), ops) {
		if res.Err != nil {
			t.Fatalf("batch item failed: %+v", res)
		}
	}
	want, err := sequential.Measure(context.Background(), "c0")
	if err != nil {
		t.Fatal(err)
	}
	got, err := batched.Measure(context.Background(), "c0")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("batched measure = %+v, sequential = %+v", got, want)
	}
}

func TestBatchCancellation(t *testing.T) {
	s := newTestService(t, WithBatchWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := make([]CreateSpec, 8)
	for i := range specs {
		specs[i] = CreateSpec{ID: fmt.Sprintf("c%d", i), Seed: uint64(i + 1)}
	}
	results := s.CreateBatch(ctx, specs)
	canceled := 0
	for _, res := range results {
		if errors.Is(res.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatalf("no items reported the cancellation: %+v", results)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
}

// TestDurableReplayRoundTrip drives the journaling decorator through
// the fleet API and proves a fresh service rebuilt from the same store
// directory lands on the bit-identical aged state.
func TestDurableReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	open := func() *Service {
		st, _, err := store.Open[*ChipEntry](dir, store.JournalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewService(st)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := open()
	if _, err := s1.Create(context.Background(), CreateSpec{ID: "c0", Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Stress(context.Background(), "c0", PhaseRequest{TempC: 110, Vdd: 1.32, AC: true, Hours: 24}); err != nil {
		t.Fatal(err)
	}
	want, err := s1.Measure(context.Background(), "c0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	defer s2.Close()
	// Create + stress; the trailing measure is pruned on open so the
	// first post-restart read reproduces the pre-crash one.
	if n := s2.ReplayedRecords(); n != 2 {
		t.Fatalf("replayed %d records, want 2", n)
	}
	got, err := s2.Measure(context.Background(), "c0")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("replayed measure = %+v, want %+v", got, want)
	}
}
