package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"selfheal/internal/obs"
	"selfheal/internal/store"
)

// Store is the chip table the fleet runs on — any store.Store holding
// fleet entries. Assemble a durable fleet with store.Open (journal
// backend) or an ephemeral one with store.NewMem.
type Store = store.Store[*ChipEntry]

// Option tunes a Service.
type Option func(*Service)

// WithBatchWorkers bounds the batch pipeline's worker pool (default
// GOMAXPROCS). Values below 1 keep the default.
func WithBatchWorkers(n int) Option {
	return func(s *Service) {
		if n >= 1 {
			s.workers = n
		}
	}
}

// Service is the fleet: chip lifecycle and operation application over
// a pluggable Store. All methods are safe for concurrent use; the
// concurrency and durability models are described in the package
// comment.
type Service struct {
	st       Store
	workers  int
	replayed int
}

// NewService assembles a fleet over st, replaying the store's durable
// history first: every simulation is deterministic per seed, so
// re-running the persisted operations lands every chip on its exact
// pre-shutdown aged state (including the usage accounting).
func NewService(st Store, opts ...Option) (*Service, error) {
	s := &Service{st: st, workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(s)
	}
	recs := st.Replay()
	for _, rec := range recs {
		if err := s.applyRecord(rec); err != nil {
			return nil, fmt.Errorf("fleet: replay: record %d (%s %s): %w", rec.Seq, rec.Op, rec.ID, err)
		}
	}
	s.replayed = len(recs)
	return s, nil
}

// applyRecord re-runs one persisted operation without re-committing it.
func (s *Service) applyRecord(rec store.Record) error {
	phase := PhaseRequest{
		TempC: rec.TempC, Vdd: rec.Vdd, AC: rec.AC,
		Hours: rec.Hours, SampleHours: rec.SampleHours,
	}
	switch rec.Op {
	case store.OpCreate:
		entry, err := newChipEntry(CreateSpec{ID: rec.ID, Seed: rec.Seed, Kind: rec.Kind})
		if err != nil {
			return err
		}
		if !s.st.Insert(rec.ID, entry) {
			return DuplicateError{ID: rec.ID}
		}
		return nil
	case store.OpStress, store.OpRejuvenate:
		entry, ok := s.st.Lookup(rec.ID)
		if !ok {
			return NotFoundError{ID: rec.ID}
		}
		var err error
		if rec.Op == store.OpStress {
			_, err = entry.Stress(context.Background(), phase, nil)
		} else {
			_, err = entry.Rejuvenate(context.Background(), phase, nil)
		}
		return err
	case store.OpMeasure, store.OpOdometer:
		// Sensor reads age the die and consume noise draws; re-run them
		// (discarding the reading) so the RNG stream lines up exactly.
		entry, ok := s.st.Lookup(rec.ID)
		if !ok {
			return NotFoundError{ID: rec.ID}
		}
		var err error
		if rec.Op == store.OpMeasure {
			_, err = entry.Measure(context.Background(), nil)
		} else {
			_, err = entry.Odometer(context.Background(), nil)
		}
		return err
	case store.OpDelete:
		_, err := s.delete(context.Background(), rec.ID, nil)
		return err
	case store.OpQuarantine, store.OpRelease:
		entry, ok := s.st.Lookup(rec.ID)
		if !ok {
			return NotFoundError{ID: rec.ID}
		}
		_, err := entry.setQuarantined(context.Background(), rec.Op == store.OpQuarantine, rec.Kind, nil)
		return err
	default:
		if store.IsEngineOp(rec.Op) {
			// Engine records share the journal but belong to the aging
			// engine's replay (engine.New consumes the same history).
			return nil
		}
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// commit returns the store-commit callback for one operation, or nil
// when the store provides no durability — the entry methods then skip
// the call entirely, matching the replay path. The captured context
// carries the request's trace into the journal's stage/commit spans;
// it does not cancel the commit.
func (s *Service) commit(ctx context.Context, rec store.Record) func() error {
	if !s.st.Durable() {
		return nil
	}
	return func() error { return s.st.Commit(ctx, rec) }
}

// lookup finds a chip, timing the sharded-store access as a
// store.lookup span when ctx carries a trace.
func (s *Service) lookup(ctx context.Context, id string) (*ChipEntry, bool) {
	_, sp := obs.StartSpan(ctx, "store.lookup",
		obs.String("chip_id", id), obs.Int("shard", store.ShardOf(id)))
	e, ok := s.st.Lookup(id)
	sp.End()
	return e, ok
}

// Create fabricates a chip and registers it. The (expensive,
// deterministic) fabrication runs outside all locks; if two racers
// fabricate the same id, exactly one wins and the other gets a
// DuplicateError. The new entry's chip lock is held until the commit
// lands, so no stress/delete on the chip can be persisted ahead of its
// create record; a failed commit rolls the registration back, making a
// retried create safe.
func (s *Service) Create(ctx context.Context, spec CreateSpec) (ChipResponse, error) {
	if spec.Kind == "" {
		spec.Kind = KindBench
	}
	_, fab := obs.StartSpan(ctx, "chip.fabricate",
		obs.String("chip_id", spec.ID), obs.String("kind", spec.Kind))
	entry, err := newChipEntry(spec)
	fab.SetError(err)
	fab.End()
	if err != nil {
		return ChipResponse{}, err
	}
	commit := s.commit(ctx, store.Record{
		Op: store.OpCreate, ID: spec.ID, Seed: spec.Seed, Kind: spec.Kind,
	})
	entry.mu.Lock()
	defer entry.mu.Unlock()
	_, ins := obs.StartSpan(ctx, "store.insert",
		obs.String("chip_id", spec.ID), obs.Int("shard", store.ShardOf(spec.ID)))
	ok := s.st.Insert(spec.ID, entry)
	ins.End()
	if !ok {
		return ChipResponse{}, DuplicateError{ID: spec.ID}
	}
	if commit != nil {
		if err := commit(); err != nil {
			// A concurrent request may already hold a reference from Lookup
			// and be blocked on entry.mu; marking the entry deleted (we
			// still hold the lock) makes such waiters see the rollback and
			// 404 instead of persisting an operation for a chip whose
			// create record never reached disk — which would poison the
			// history and fail every subsequent replay.
			entry.deleted = true
			s.st.Remove(spec.ID)
			return ChipResponse{}, NotDurableError{Op: "create", Err: err}
		}
	}
	return entry.Info(), nil
}

// Delete retires a chip: it marks the entry deleted under the chip
// lock (waiting out any in-flight operation, whose persisted record
// therefore precedes the delete record), commits, and removes it from
// the store. The first return reports whether the chip existed; a
// failed commit rolls the mark back so the delete can be retried.
func (s *Service) Delete(ctx context.Context, id string) (bool, error) {
	return s.delete(ctx, id, s.commit(ctx, store.Record{Op: store.OpDelete, ID: id}))
}

func (s *Service) delete(ctx context.Context, id string, commit func() error) (bool, error) {
	e, ok := s.lookup(ctx, id)
	if !ok {
		return false, nil
	}
	e.lock(ctx)
	defer e.mu.Unlock()
	if e.deleted {
		return false, nil
	}
	e.deleted = true
	if commit != nil {
		if err := commit(); err != nil {
			e.deleted = false
			return true, NotDurableError{Op: "delete", Err: err}
		}
	}
	s.st.Remove(id)
	return true, nil
}

// Get returns the chip registered under id.
func (s *Service) Get(id string) (*ChipEntry, bool) { return s.st.Lookup(id) }

// Quarantine marks a chip quarantined: mutations refuse with
// QuarantinedError until Release, reads keep serving. The transition is
// journaled (the reason rides in the record's Kind field), so replay
// restores the quarantine set exactly. The first return reports whether
// the state changed (false: it was already quarantined).
func (s *Service) Quarantine(ctx context.Context, id, reason string) (bool, error) {
	entry, ok := s.lookup(ctx, id)
	if !ok {
		return false, NotFoundError{ID: id}
	}
	return entry.setQuarantined(ctx, true, reason,
		s.commit(ctx, store.Record{Op: store.OpQuarantine, ID: id, Kind: reason}))
}

// Release lifts a chip's quarantine; semantics mirror Quarantine.
func (s *Service) Release(ctx context.Context, id string) (bool, error) {
	entry, ok := s.lookup(ctx, id)
	if !ok {
		return false, NotFoundError{ID: id}
	}
	return entry.setQuarantined(ctx, false, "",
		s.commit(ctx, store.Record{Op: store.OpRelease, ID: id}))
}

// Quarantined reports whether the chip is currently quarantined.
func (s *Service) Quarantined(id string) bool {
	entry, ok := s.st.Lookup(id)
	if !ok {
		return false
	}
	q, _ := entry.Quarantined()
	return q
}

// QuarantinedIDs returns the ids of every quarantined chip, sorted.
func (s *Service) QuarantinedIDs() []string {
	var out []string
	s.st.ForEach(func(id string, e *ChipEntry) bool {
		if q, _ := e.Quarantined(); q {
			out = append(out, id)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// Stress ages a chip; see ChipEntry.Stress for the commit semantics.
func (s *Service) Stress(ctx context.Context, id string, req PhaseRequest) (PhaseResponse, error) {
	entry, ok := s.lookup(ctx, id)
	if !ok {
		return PhaseResponse{}, NotFoundError{ID: id}
	}
	return entry.Stress(ctx, req, s.commit(ctx, store.Record{
		Op: store.OpStress, ID: id,
		TempC: req.TempC, Vdd: req.Vdd, AC: req.AC,
		Hours: req.Hours, SampleHours: req.SampleHours,
	}))
}

// Rejuvenate heals a chip; commit semantics match Stress.
func (s *Service) Rejuvenate(ctx context.Context, id string, req PhaseRequest) (PhaseResponse, error) {
	entry, ok := s.lookup(ctx, id)
	if !ok {
		return PhaseResponse{}, NotFoundError{ID: id}
	}
	return entry.Rejuvenate(ctx, req, s.commit(ctx, store.Record{
		Op: store.OpRejuvenate, ID: id,
		TempC: req.TempC, Vdd: req.Vdd,
		Hours: req.Hours, SampleHours: req.SampleHours,
	}))
}

// Measure reads a bench chip's ring-oscillator sensor.
func (s *Service) Measure(ctx context.Context, id string) (ReadingResponse, error) {
	entry, ok := s.lookup(ctx, id)
	if !ok {
		return ReadingResponse{}, NotFoundError{ID: id}
	}
	return entry.Measure(ctx, s.commit(ctx, store.Record{Op: store.OpMeasure, ID: id}))
}

// Odometer reads a monitored chip's differential aging sensor.
func (s *Service) Odometer(ctx context.Context, id string) (OdometerResponse, error) {
	entry, ok := s.lookup(ctx, id)
	if !ok {
		return OdometerResponse{}, NotFoundError{ID: id}
	}
	return entry.Odometer(ctx, s.commit(ctx, store.Record{Op: store.OpOdometer, ID: id}))
}

// List returns every chip's ChipResponse sorted by id.
func (s *Service) List() []ChipResponse {
	var out []ChipResponse
	s.st.ForEach(func(_ string, e *ChipEntry) bool {
		out = append(out, e.Info())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Usage snapshots every chip's accumulated stress/heal seconds. The
// visitor takes chip locks, which is safe because ForEach holds no
// store locks while visiting (see the internal/store lock hierarchy).
func (s *Service) Usage() map[string]ChipUsage {
	out := make(map[string]ChipUsage)
	s.st.ForEach(func(id string, e *ChipEntry) bool {
		out[id] = e.usage()
		return true
	})
	return out
}

// Len reports the number of registered chips.
func (s *Service) Len() int { return s.st.Len() }

// Durable reports whether the fleet's store survives restarts.
func (s *Service) Durable() bool { return s.st.Durable() }

// Probe rechecks the store's durability during a degraded episode.
func (s *Service) Probe() error { return s.st.Probe() }

// StoreStats reports the persistence backend's counters; ok is false
// for non-durable fleets.
func (s *Service) StoreStats() (store.Stats, bool) { return s.st.Stats() }

// ReplayedRecords reports how many records NewService replayed.
func (s *Service) ReplayedRecords() int { return s.replayed }

// Close releases the store (and any journal it owns).
func (s *Service) Close() error { return s.st.Close() }
