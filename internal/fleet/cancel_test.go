package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"selfheal/internal/store"
)

// TestBatchCancellationCode checks that items skipped because the
// batch context was cancelled report CodeCanceled and a CanceledError
// — distinguishable from a generic failure, so callers can retry them
// blindly (the chip was never touched).
func TestBatchCancellationCode(t *testing.T) {
	s, err := NewService(store.NewMem[*ChipEntry](), WithBatchWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts: every item is skipped

	specs := make([]CreateSpec, 4)
	for i := range specs {
		specs[i] = CreateSpec{ID: fmt.Sprintf("c%d", i), Seed: uint64(i + 1)}
	}
	for i, res := range s.CreateBatch(ctx, specs) {
		if res.Code != CodeCanceled {
			t.Errorf("create item %d: Code=%q, want %q", i, res.Code, CodeCanceled)
		}
		var cerr CanceledError
		if !errors.As(res.Err, &cerr) {
			t.Errorf("create item %d: Err=%T, want CanceledError", i, res.Err)
		}
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("create item %d: Err does not unwrap to context.Canceled", i)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("cancelled batch created %d chips", s.Len())
	}

	ops := []OpSpec{{Op: BatchOpStress, ID: "c0", PhaseRequest: PhaseRequest{TempC: 110, Vdd: 1.2, Hours: 1}}}
	for i, res := range s.ApplyBatch(ctx, ops) {
		if res.Code != CodeCanceled {
			t.Errorf("op item %d: Code=%q, want %q", i, res.Code, CodeCanceled)
		}
		var cerr CanceledError
		if !errors.As(res.Err, &cerr) {
			t.Errorf("op item %d: Err=%T, want CanceledError", i, res.Err)
		}
	}

	// A genuine failure must NOT carry the canceled code.
	res := s.ApplyBatch(context.Background(), []OpSpec{{Op: BatchOpStress, ID: "missing", PhaseRequest: PhaseRequest{TempC: 110, Vdd: 1.2, Hours: 1}}})
	if res[0].Code == CodeCanceled {
		t.Errorf("not-found failure carries CodeCanceled")
	}
	if res[0].Err == nil {
		t.Errorf("not-found failure carries no error")
	}
}

// TestReplaySkipsEngineOps checks that the fleet replay passes over
// engine records in the shared journal instead of refusing to start.
func TestReplaySkipsEngineOps(t *testing.T) {
	st := store.NewMem[*ChipEntry]()
	s, err := NewService(st)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, op := range []store.Op{
		store.OpEngineReg, store.OpEngineRemove, store.OpEngineSet,
		store.OpEngineSchedule, store.OpEngineEpoch,
	} {
		if err := s.applyRecord(store.Record{Seq: 1, Op: op, ID: "e0"}); err != nil {
			t.Errorf("applyRecord(%s): %v", op, err)
		}
	}
	if err := s.applyRecord(store.Record{Seq: 2, Op: "bogus", ID: "x"}); err == nil {
		t.Error("applyRecord(bogus op): want error")
	}
}
