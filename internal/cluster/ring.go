// Package cluster implements deterministic chip-id → node placement for a
// multi-node selfheal fleet.
//
// Placement is a consistent-hash ring: every node contributes a fixed number
// of virtual points (vnodes) hashed from its node *id*, and a chip id is
// owned by the node whose first point follows the chip's hash clockwise.
// Hashing only the id — never the address — means a failover that promotes a
// standby under the dead node's id (the supported promotion procedure) moves
// zero chips; only genuine membership changes (adding or removing an id)
// rebalance, and then only ~1/N of the keyspace.
//
// The ring is immutable after construction; membership changes build a new
// ring and PlanRebalance reports the data movement the change implies.
// cluster sits outside the canonical lock hierarchy (see internal/store): it
// holds no locks and is safe for concurrent use.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per physical node when a caller
// passes vnodes <= 0. 64 points per node keeps the largest/smallest shard
// ratio under ~1.5 at small cluster sizes while the ring stays tiny.
const DefaultVNodes = 64

// Node is one cluster member: a stable identity and the base URL clients and
// peers use to reach it. Addr may change (failover, restart on a new port)
// without affecting placement.
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

type point struct {
	hash uint64
	id   string
}

// Ring places keys on nodes by consistent hashing. Immutable; build a new
// Ring for every membership change.
type Ring struct {
	vnodes int
	nodes  map[string]Node
	points []point // sorted by hash
}

// New builds a ring from the given members. Node ids must be non-empty and
// unique; at least one node is required.
func New(nodes []Node, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		vnodes: vnodes,
		nodes:  make(map[string]Node, len(nodes)),
		points: make([]point, 0, len(nodes)*vnodes),
	}
	for _, n := range nodes {
		if n.ID == "" {
			return nil, errors.New("cluster: node id must be non-empty")
		}
		if _, dup := r.nodes[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		r.nodes[n.ID] = n
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(n.ID + "#" + strconv.Itoa(i)), id: n.ID})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on id so construction order never affects placement.
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// Owner returns the node that owns key. The ring is never empty, so Owner
// always succeeds.
func (r *Ring) Owner(key string) Node {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].id]
}

// Lookup returns the node with the given id.
func (r *Ring) Lookup(id string) (Node, bool) {
	n, ok := r.nodes[id]
	return n, ok
}

// Nodes returns the members sorted by id.
func (r *Ring) Nodes() []Node {
	out := make([]Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// VNodes returns the virtual-node count per physical node.
func (r *Ring) VNodes() int { return r.vnodes }

// WithAddr returns a copy of the ring with node id's address replaced.
// Placement is unchanged (points hash only ids). Returns an error if id is
// not a member.
func (r *Ring) WithAddr(id, addr string) (*Ring, error) {
	if _, ok := r.nodes[id]; !ok {
		return nil, fmt.Errorf("cluster: unknown node id %q", id)
	}
	nr := &Ring{vnodes: r.vnodes, nodes: make(map[string]Node, len(r.nodes)), points: r.points}
	for nid, n := range r.nodes {
		if nid == id {
			n.Addr = addr
		}
		nr.nodes[nid] = n
	}
	return nr, nil
}

// Transfer is one directed edge of a rebalance plan: Keys of the sampled
// keyspace move from node From to node To.
type Transfer struct {
	From string `json:"from"`
	To   string `json:"to"`
	Keys int    `json:"keys"`
}

// Plan summarizes the data movement implied by replacing ring old with ring
// next, estimated over a deterministic sample of the keyspace.
type Plan struct {
	Sampled   int        `json:"sampled"`
	Moved     int        `json:"moved"`
	Fraction  float64    `json:"fraction"`
	Transfers []Transfer `json:"transfers,omitempty"`
}

// PlanRebalance estimates the movement caused by a membership change by
// probing sample synthetic keys against both rings. sample <= 0 defaults to
// 4096. The estimate is deterministic: the same pair of rings always yields
// the same plan.
func PlanRebalance(old, next *Ring, sample int) Plan {
	if sample <= 0 {
		sample = 4096
	}
	moved := map[[2]string]int{}
	p := Plan{Sampled: sample}
	for i := 0; i < sample; i++ {
		key := "rebalance-probe-" + strconv.Itoa(i)
		from, to := old.Owner(key).ID, next.Owner(key).ID
		if from != to {
			p.Moved++
			moved[[2]string{from, to}]++
		}
	}
	p.Fraction = float64(p.Moved) / float64(p.Sampled)
	for edge, n := range moved {
		p.Transfers = append(p.Transfers, Transfer{From: edge[0], To: edge[1], Keys: n})
	}
	sort.Slice(p.Transfers, func(i, j int) bool {
		if p.Transfers[i].From != p.Transfers[j].From {
			return p.Transfers[i].From < p.Transfers[j].From
		}
		return p.Transfers[i].To < p.Transfers[j].To
	})
	return p
}

// Moved returns the subset of keys whose owner differs between old and next,
// preserving input order. Used to enumerate the chips a live membership
// change would relocate.
func Moved(old, next *Ring, keys []string) []string {
	var out []string
	for _, k := range keys {
		if old.Owner(k).ID != next.Owner(k).ID {
			out = append(out, k)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a avalanches poorly on short
// inputs (single-character node ids land adjacent on the ring); a final mix
// spreads the points uniformly regardless of id length.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
