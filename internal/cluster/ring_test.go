package cluster

import (
	"fmt"
	"strconv"
	"testing"
)

func threeNodes() []Node {
	return []Node{
		{ID: "a", Addr: "http://127.0.0.1:8001"},
		{ID: "b", Addr: "http://127.0.0.1:8002"},
		{ID: "c", Addr: "http://127.0.0.1:8003"},
	}
}

func TestRingDeterministic(t *testing.T) {
	r1, err := New(threeNodes(), 64)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Same membership in a different declaration order must place identically.
	rev := []Node{threeNodes()[2], threeNodes()[0], threeNodes()[1]}
	r2, err := New(rev, 64)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 10000; i++ {
		key := "chip-" + strconv.Itoa(i)
		if got, want := r2.Owner(key).ID, r1.Owner(key).ID; got != want {
			t.Fatalf("key %q: order-dependent placement: %q vs %q", key, got, want)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := New(nil, 64); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := New([]Node{{ID: ""}}, 64); err == nil {
		t.Fatal("empty node id accepted")
	}
	if _, err := New([]Node{{ID: "a"}, {ID: "a"}}, 64); err == nil {
		t.Fatal("duplicate node id accepted")
	}
}

func TestRingBalance(t *testing.T) {
	r, err := New(threeNodes(), 64)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner("chip-"+strconv.Itoa(i)).ID]++
	}
	for id, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys; want roughly balanced (counts=%v)", id, frac*100, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own keys: %v", len(counts), counts)
	}
}

func TestRingMinimalDisruptionOnAdd(t *testing.T) {
	old, _ := New(threeNodes(), 64)
	next, err := New(append(threeNodes(), Node{ID: "d", Addr: "http://127.0.0.1:8004"}), 64)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var keys []string
	for i := 0; i < 10000; i++ {
		keys = append(keys, "chip-"+strconv.Itoa(i))
	}
	moved := Moved(old, next, keys)
	// Ideal is 1/4; allow generous slack but far below a full reshuffle.
	if frac := float64(len(moved)) / float64(len(keys)); frac > 0.40 {
		t.Fatalf("adding one node to three moved %.1f%% of keys; want ~25%%", frac*100)
	}
	// Every moved key must land on the new node — survivors never trade keys.
	for _, k := range moved {
		if got := next.Owner(k).ID; got != "d" {
			t.Fatalf("key %q moved %s -> %s; moves on add must target the new node", k, old.Owner(k).ID, got)
		}
	}
}

func TestRingPromotionByIDReuseMovesNothing(t *testing.T) {
	old, _ := New(threeNodes(), 64)
	// Failover: node a's standby is promoted under the same id, new address.
	promoted, err := old.WithAddr("a", "http://127.0.0.1:9001")
	if err != nil {
		t.Fatalf("WithAddr: %v", err)
	}
	for i := 0; i < 10000; i++ {
		key := "chip-" + strconv.Itoa(i)
		if old.Owner(key).ID != promoted.Owner(key).ID {
			t.Fatalf("key %q moved after address-only failover", key)
		}
	}
	if got := promoted.Owner("chip-anything"); got.ID == "a" && got.Addr != "http://127.0.0.1:9001" {
		t.Fatalf("promoted addr not visible: %+v", got)
	}
	if n, _ := promoted.Lookup("a"); n.Addr != "http://127.0.0.1:9001" {
		t.Fatalf("Lookup(a).Addr = %q", n.Addr)
	}
	if _, err := old.WithAddr("zzz", "x"); err == nil {
		t.Fatal("WithAddr of unknown id accepted")
	}
}

func TestPlanRebalance(t *testing.T) {
	old, _ := New(threeNodes(), 64)
	next, _ := New(append(threeNodes(), Node{ID: "d"}), 64)
	p1 := PlanRebalance(old, next, 0)
	p2 := PlanRebalance(old, next, 0)
	if p1.Sampled != 4096 || p1.Moved == 0 {
		t.Fatalf("plan: %+v", p1)
	}
	if p1.Moved != p2.Moved || p1.Fraction != p2.Fraction {
		t.Fatalf("plan not deterministic: %+v vs %+v", p1, p2)
	}
	if p1.Fraction > 0.40 {
		t.Fatalf("plan fraction %.2f too high for a 3->4 change", p1.Fraction)
	}
	for _, tr := range p1.Transfers {
		if tr.To != "d" {
			t.Fatalf("transfer %+v does not target the new node", tr)
		}
	}
	// No membership change → empty plan.
	p3 := PlanRebalance(old, old, 128)
	if p3.Moved != 0 || len(p3.Transfers) != 0 {
		t.Fatalf("no-op plan moved keys: %+v", p3)
	}
}

func TestRingNodesSorted(t *testing.T) {
	r, _ := New(threeNodes(), 8)
	nodes := r.Nodes()
	if len(nodes) != 3 || r.Len() != 3 {
		t.Fatalf("nodes: %v", nodes)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID >= nodes[i].ID {
			t.Fatalf("nodes not sorted: %v", nodes)
		}
	}
	if r.VNodes() != 8 {
		t.Fatalf("vnodes = %d", r.VNodes())
	}
}

func BenchmarkRingOwner(b *testing.B) {
	var nodes []Node
	for i := 0; i < 8; i++ {
		nodes = append(nodes, Node{ID: fmt.Sprintf("node-%d", i)})
	}
	r, _ := New(nodes, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owner("chip-" + strconv.Itoa(i&1023))
	}
}
