// Package puf builds the system of the paper's ref [17] (Maiti &
// Schaumont, FPL'11): a ring-oscillator physical unclonable function on
// the FPGA fabric, and what BTI aging does to it. Each response bit
// compares the frequencies of an RO pair; the fresh frequency margins
// come from within-die process variation, so *differential* aging —
// one oscillator of a pair working harder than the other — erodes the
// margins and flips enrolled bits.
//
// Because accelerated self-healing removes a *fraction* of every
// device's shift, it shrinks the differential by the same fraction and
// flipped bits revert: the paper's rejuvenation, applied to a security
// primitive.
package puf

import (
	"errors"
	"fmt"

	"selfheal/internal/fpga"
	"selfheal/internal/rng"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

// Params configures a RO-PUF instance.
type Params struct {
	// Bits is the number of response bits (one RO pair each).
	Bits int
	// Stages is the inverter-chain length per oscillator; small and
	// odd, so many pairs fit one die.
	Stages int
	// JitterFrac is the 1σ relative frequency noise of a single
	// evaluation (thermal jitter of the counters).
	JitterFrac float64
}

// DefaultParams fits a 16-bit PUF (32 five-stage oscillators, 160
// cells) on the default 16×16 fabric with 0.01 % evaluation jitter.
func DefaultParams() Params {
	return Params{Bits: 16, Stages: 5, JitterFrac: 1e-4}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Bits <= 0:
		return errors.New("puf: need at least one bit")
	case p.Stages <= 0 || p.Stages%2 == 0:
		return errors.New("puf: stages must be positive and odd")
	case p.JitterFrac < 0:
		return errors.New("puf: jitter must be non-negative")
	}
	return nil
}

// PUF is one enrolled RO-PUF on a chip.
type PUF struct {
	params Params
	vdd    units.Volt
	pairs  [][2]*fpga.Mapping
	golden []bool
	src    *rng.Source
}

// New maps 2·Bits oscillators onto the chip, registers their activity
// with the engine — the A oscillator of each pair free-runs (AC) while
// the B oscillator sits frozen between evaluations (DC), the usage
// asymmetry that makes aging differential — and enrolls the golden
// response from the fresh, noise-free frequencies.
func New(chip *fpga.Chip, eng *stress.Engine, name string, p Params, src *rng.Source) (*PUF, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if eng == nil || eng.Chip() != chip {
		return nil, errors.New("puf: engine must drive the PUF's chip")
	}
	u := &PUF{
		params: p,
		vdd:    chip.Params().NominalVdd,
		golden: make([]bool, p.Bits),
		src:    src,
	}
	for i := 0; i < p.Bits; i++ {
		a, err := chip.MapCells(fmt.Sprintf("%s.bit%d.A", name, i), p.Stages)
		if err != nil {
			return nil, fmt.Errorf("puf: %w", err)
		}
		b, err := chip.MapCells(fmt.Sprintf("%s.bit%d.B", name, i), p.Stages)
		if err != nil {
			return nil, fmt.Errorf("puf: %w", err)
		}
		for _, m := range []*fpga.Mapping{a, b} {
			for _, cell := range m.Cells {
				cell.ConfigureInverter()
			}
		}
		if err := eng.AddActivity(stress.Activity{Mapping: a, AC: true}); err != nil {
			return nil, err
		}
		if err := eng.AddActivity(stress.Activity{Mapping: b, AC: false, FrozenIn0: true}); err != nil {
			return nil, err
		}
		u.pairs = append(u.pairs, [2]*fpga.Mapping{a, b})
	}
	// Enrollment: golden bit i ⇔ oscillator A is faster (shorter
	// chain delay), evaluated noise-free (enrollment majority-votes
	// many reads in practice).
	for i, pair := range u.pairs {
		da, err := pair[0].MeasuredDelay(chip.Params().NominalVdd)
		if err != nil {
			return nil, err
		}
		db, err := pair[1].MeasuredDelay(chip.Params().NominalVdd)
		if err != nil {
			return nil, err
		}
		u.golden[i] = da < db
	}
	return u, nil
}

// Bits returns the response width.
func (u *PUF) Bits() int { return u.params.Bits }

// Golden returns a copy of the enrolled response.
func (u *PUF) Golden() []bool { return append([]bool(nil), u.golden...) }

// Read evaluates the PUF once with jitter noise.
func (u *PUF) Read() ([]bool, error) {
	out := make([]bool, u.params.Bits)
	for i, pair := range u.pairs {
		da, err := pair[0].MeasuredDelay(u.vdd)
		if err != nil {
			return nil, err
		}
		db, err := pair[1].MeasuredDelay(u.vdd)
		if err != nil {
			return nil, err
		}
		da *= 1 + u.src.NormalWith(0, u.params.JitterFrac)
		db *= 1 + u.src.NormalWith(0, u.params.JitterFrac)
		out[i] = da < db
	}
	return out, nil
}

// Reliability evaluates the PUF reads times and returns the average
// fraction of bits matching the enrolled response — the metric of
// ref [17].
func (u *PUF) Reliability(reads int) (float64, error) {
	if reads <= 0 {
		return 0, errors.New("puf: need at least one read")
	}
	match := 0
	for r := 0; r < reads; r++ {
		resp, err := u.Read()
		if err != nil {
			return 0, err
		}
		for i, bit := range resp {
			if bit == u.golden[i] {
				match++
			}
		}
	}
	return float64(match) / float64(reads*u.params.Bits), nil
}

// FlippedBits returns how many bits of a noise-free evaluation differ
// from the enrolled response — permanent drift, as opposed to jitter.
func (u *PUF) FlippedBits() (int, error) {
	flips := 0
	for i, pair := range u.pairs {
		da, err := pair[0].MeasuredDelay(u.vdd)
		if err != nil {
			return 0, err
		}
		db, err := pair[1].MeasuredDelay(u.vdd)
		if err != nil {
			return 0, err
		}
		if (da < db) != u.golden[i] {
			flips++
		}
	}
	return flips, nil
}
