package puf

import (
	"testing"

	"selfheal/internal/fpga"
	"selfheal/internal/rng"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

func rig(t *testing.T, seed uint64) (*fpga.Chip, *stress.Engine, *PUF) {
	t.Helper()
	params := fpga.DefaultParams()
	// PUF bit margins come from device mismatch; the small transistors
	// PUF cells use have far larger σ than the fabric's logic-sizing
	// default (the classic PUF design choice).
	params.LocalSigmaFrac = 0.02
	chip, err := fpga.NewChip("puf", params, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	eng := stress.New(chip)
	eng.StressIdleCells = false
	u, err := New(chip, eng, "puf", DefaultParams(), rng.New(seed+9))
	if err != nil {
		t.Fatal(err)
	}
	return chip, eng, u
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.Bits = 0 },
		func(p *Params) { p.Stages = 0 },
		func(p *Params) { p.Stages = 4 },
		func(p *Params) { p.JitterFrac = -1 },
	}
	for i, mod := range mods {
		p := DefaultParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
	chipA, err := fpga.NewChip("a", fpga.DefaultParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	chipB, err := fpga.NewChip("b", fpga.DefaultParams(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(chipA, stress.New(chipB), "x", DefaultParams(), rng.New(3)); err == nil {
		t.Error("mismatched engine accepted")
	}
	if _, err := New(chipA, nil, "x", DefaultParams(), rng.New(3)); err == nil {
		t.Error("nil engine accepted")
	}
	// Fabric exhaustion: 16 bits need 160 cells; a second 16-bit PUF
	// needs another 160 of the remaining 96.
	engA := stress.New(chipA)
	if _, err := New(chipA, engA, "one", DefaultParams(), rng.New(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(chipA, engA, "two", DefaultParams(), rng.New(5)); err == nil {
		t.Error("over-capacity PUF accepted")
	}
}

func TestEnrollmentUniqueAndStable(t *testing.T) {
	_, _, u := rig(t, 10)
	if u.Bits() != 16 {
		t.Fatalf("bits = %d", u.Bits())
	}
	golden := u.Golden()
	// Process variation must give a mixed response (not all one value)
	// with overwhelming probability across 16 bits.
	zeros := 0
	for _, b := range golden {
		if !b {
			zeros++
		}
	}
	if zeros == 0 || zeros == 16 {
		t.Errorf("degenerate golden response: %d zeros", zeros)
	}
	// Fresh reliability near 1 (only jitter can flip a bit).
	rel, err := u.Reliability(50)
	if err != nil {
		t.Fatal(err)
	}
	if rel < 0.97 {
		t.Errorf("fresh reliability = %v", rel)
	}
	flips, err := u.FlippedBits()
	if err != nil {
		t.Fatal(err)
	}
	if flips != 0 {
		t.Errorf("fresh noise-free flips = %d", flips)
	}
	if _, err := u.Reliability(0); err == nil {
		t.Error("zero reads accepted")
	}
}

func TestUniquenessAcrossChips(t *testing.T) {
	_, _, a := rig(t, 20)
	_, _, b := rig(t, 21)
	same := 0
	ga, gb := a.Golden(), b.Golden()
	for i := range ga {
		if ga[i] == gb[i] {
			same++
		}
	}
	// Different dies must not produce identical responses.
	if same == len(ga) {
		t.Error("two chips enrolled identical responses")
	}
}

// TestAgingDegradesAndHealingRestores is ref [17]'s observation plus
// the paper's remedy: asymmetric usage (A free-running, B frozen) ages
// the pairs differentially, flipping enrolled bits; an accelerated
// rejuvenation shrinks every device's shift by the same fraction, so
// the differential shrinks too and flipped bits revert.
func TestAgingDegradesAndHealingRestores(t *testing.T) {
	_, eng, u := rig(t, 30)
	if err := eng.Step(1.2, 110, 48*units.Hour); err != nil {
		t.Fatal(err)
	}
	agedFlips, err := u.FlippedBits()
	if err != nil {
		t.Fatal(err)
	}
	if agedFlips == 0 {
		t.Fatal("aging flipped no bits — differential too weak to test healing")
	}
	agedRel, err := u.Reliability(50)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(-0.3, 110, 12*units.Hour); err != nil {
		t.Fatal(err)
	}
	healedFlips, err := u.FlippedBits()
	if err != nil {
		t.Fatal(err)
	}
	healedRel, err := u.Reliability(50)
	if err != nil {
		t.Fatal(err)
	}
	if healedFlips >= agedFlips {
		t.Errorf("healing did not revert flips: %d -> %d", agedFlips, healedFlips)
	}
	if healedRel <= agedRel {
		t.Errorf("healing did not improve reliability: %.3f -> %.3f", agedRel, healedRel)
	}
}

func BenchmarkRead(b *testing.B) {
	chip, err := fpga.NewChip("b", fpga.DefaultParams(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	eng := stress.New(chip)
	u, err := New(chip, eng, "p", DefaultParams(), rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
