// Package lutk generalizes the 2-input LUT of package lut to k inputs:
// a full pass-transistor multiplexer tree with 2^k configuration cells,
// a level-restoring buffer and a routing switch. It exists for the
// LUT-implementation aging study the paper cites (Kiamehr et al.,
// "Investigation of NBTI and PBTI induced aging in different LUT
// implementations", the paper's ref. [18]): how does the choice of LUT
// size change BTI exposure and the resulting path-delay degradation?
//
// # Structure
//
// Level j of the tree (j = 0 … k−1) is selected by input j: every pair
// of level-j nodes feeds a level-j+1 node through two NMOS pass
// transistors gated by in_j and !in_j. The 2^k leaves hold the truth
// table complemented (the output buffer inverts), so evaluating inputs
// returns truth[index] with index = Σ in_j·2^j.
//
// Stress analysis follows the same physics as package lut: an NMOS pass
// transistor is under PBTI stress when its gate is high and it passes a
// logic low; exactly 2^k − 1 tree transistors conduct for any input
// vector (one per internal node), and the conducting-path depth is
// k + 2 (k tree levels + buffer + routing switch).
package lutk

import (
	"errors"
	"fmt"

	"selfheal/internal/device"
	"selfheal/internal/units"
)

// LUT is a k-input pass-transistor look-up table.
type LUT struct {
	name string
	k    int
	cfg  []bool // truth table, len 2^k, index = Σ in_j·2^j
	// tree[j] holds level-j transistors: 2^(k-j) of them, two per
	// level-j+1 node: tree[j][2*n] gated by in_j (selects the high
	// child), tree[j][2*n+1] gated by !in_j (low child).
	tree  [][]*device.Transistor
	bufP  *device.Transistor
	bufN  *device.Transistor
	route *device.Transistor
}

// MaxK bounds the supported LUT size; commercial fabrics top out at 6.
const MaxK = 8

// New builds a k-input LUT with all configuration cells zero.
func New(name string, k int, dp device.Params) (*LUT, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("lutk: k = %d outside 1..%d", k, MaxK)
	}
	l := &LUT{
		name: name,
		k:    k,
		cfg:  make([]bool, 1<<k),
		tree: make([][]*device.Transistor, k),
	}
	for j := 0; j < k; j++ {
		n := 1 << (k - j)
		l.tree[j] = make([]*device.Transistor, n)
		for i := range l.tree[j] {
			l.tree[j][i] = device.New(fmt.Sprintf("%s.L%dT%d", name, j, i), device.NMOS, dp)
		}
	}
	l.bufP = device.New(name+".BufP", device.PMOS, dp)
	l.bufN = device.New(name+".BufN", device.NMOS, dp)
	l.route = device.New(name+".Route", device.NMOS, dp)
	return l, nil
}

// K returns the input count.
func (l *LUT) K() int { return l.k }

// Name returns the instance name.
func (l *LUT) Name() string { return l.name }

// TransistorCount returns the total device count:
// 2^(k+1) − 2 tree transistors + buffer pair + routing switch.
func (l *LUT) TransistorCount() int { return (1<<(l.k+1) - 2) + 3 }

// Configure programs the truth table (length must be 2^k).
func (l *LUT) Configure(truth []bool) error {
	if len(truth) != 1<<l.k {
		return fmt.Errorf("lutk: truth table length %d, want %d", len(truth), 1<<l.k)
	}
	copy(l.cfg, truth)
	return nil
}

// ConfigureFunc programs the truth table from a boolean function over
// the input vector.
func (l *LUT) ConfigureFunc(f func(in []bool) bool) {
	in := make([]bool, l.k)
	for idx := range l.cfg {
		for j := 0; j < l.k; j++ {
			in[j] = idx>>j&1 == 1
		}
		l.cfg[idx] = f(in)
	}
}

// ConfigureInverter programs out = !in[k−1] regardless of the other
// inputs — the CUT configuration of the paper's RO, generalized. The
// inverter input is the *last* one so it selects the root mux level,
// matching the 2-input cell of package lut where the toggling input
// drives the final stage while the statically held inputs select near
// the leaves (whose conducting transistors therefore sit under DC
// stress even in AC mode).
func (l *LUT) ConfigureInverter() {
	last := l.k - 1
	l.ConfigureFunc(func(in []bool) bool { return !in[last] })
}

// index folds an input vector into a truth-table index.
func (l *LUT) index(in []bool) int {
	idx := 0
	for j, v := range in {
		if v {
			idx |= 1 << j
		}
	}
	return idx
}

// Eval returns the LUT output for the input vector.
func (l *LUT) Eval(in []bool) (bool, error) {
	if len(in) != l.k {
		return false, fmt.Errorf("lutk: %d inputs, want %d", len(in), l.k)
	}
	return l.cfg[l.index(in)], nil
}

// nodeValues computes the complemented node values of every tree level
// for the given inputs: level 0 is the leaves (!cfg), level j+1 the
// mux outputs selected by in_j.
func (l *LUT) nodeValues(in []bool) [][]bool {
	vals := make([][]bool, l.k+1)
	vals[0] = make([]bool, 1<<l.k)
	for i, c := range l.cfg {
		vals[0][i] = !c
	}
	for j := 0; j < l.k; j++ {
		n := 1 << (l.k - j - 1)
		vals[j+1] = make([]bool, n)
		for node := 0; node < n; node++ {
			if in[j] {
				vals[j+1][node] = vals[j][2*node+1] // high child
			} else {
				vals[j+1][node] = vals[j][2*node]
			}
		}
	}
	return vals
}

// Stressed returns the transistors under BTI stress for a static input
// vector.
func (l *LUT) Stressed(in []bool) ([]*device.Transistor, error) {
	if len(in) != l.k {
		return nil, fmt.Errorf("lutk: %d inputs, want %d", len(in), l.k)
	}
	vals := l.nodeValues(in)
	var out []*device.Transistor
	for j := 0; j < l.k; j++ {
		for node := 0; node < 1<<(l.k-j-1); node++ {
			// The conducting transistor of this node pair passes the
			// selected child; stressed iff that value is low.
			var tr *device.Transistor
			var passed bool
			if in[j] {
				tr = l.tree[j][2*node] // gated by in_j
				passed = vals[j][2*node+1]
			} else {
				tr = l.tree[j][2*node+1] // gated by !in_j
				passed = vals[j][2*node]
			}
			if !passed {
				out = append(out, tr)
			}
		}
	}
	mo := vals[l.k][0]
	if !mo {
		out = append(out, l.bufP)
	} else {
		out = append(out, l.bufN)
	}
	if q := !mo; !q {
		out = append(out, l.route)
	}
	return out, nil
}

// ConductingPath returns the path of interest: the k selected tree
// transistors from leaf to root, the driving buffer device and the
// routing switch — depth k + 2.
func (l *LUT) ConductingPath(in []bool) ([]*device.Transistor, error) {
	if len(in) != l.k {
		return nil, fmt.Errorf("lutk: %d inputs, want %d", len(in), l.k)
	}
	vals := l.nodeValues(in)
	path := make([]*device.Transistor, 0, l.k+2)
	node := l.index(in) // leaf index
	for j := 0; j < l.k; j++ {
		parent := node >> 1
		if in[j] {
			path = append(path, l.tree[j][2*parent])
		} else {
			path = append(path, l.tree[j][2*parent+1])
		}
		node = parent
	}
	buf := l.bufN
	if !vals[l.k][0] {
		buf = l.bufP
	}
	path = append(path, buf, l.route)
	return path, nil
}

// PathDelay returns the POI propagation delay in nanoseconds.
func (l *LUT) PathDelay(vdd units.Volt, in []bool) (float64, error) {
	path, err := l.ConductingPath(in)
	if err != nil {
		return 0, err
	}
	return device.PathDelay(vdd, path)
}

// Transistors returns every device in the cell.
func (l *LUT) Transistors() []*device.Transistor {
	var out []*device.Transistor
	for _, level := range l.tree {
		out = append(out, level...)
	}
	return append(out, l.bufP, l.bufN, l.route)
}

// Reset restores every device to the fresh state.
func (l *LUT) Reset() {
	for _, tr := range l.Transistors() {
		tr.Reset()
	}
}

// Phase is a weighted static input pattern, mirroring lut.Phase for
// arbitrary k.
type Phase struct {
	In     []bool
	Weight float64
}

// InverterDCPhase freezes the inverter input in[k−1] at v with the
// other inputs held high.
func InverterDCPhase(k int, v bool) []Phase {
	in := make([]bool, k)
	for j := 0; j < k-1; j++ {
		in[j] = true
	}
	in[k-1] = v
	return []Phase{{In: in, Weight: 1}}
}

// InverterACPhase toggles the inverter input in[k−1] symmetrically with
// the other inputs held high.
func InverterACPhase(k int) []Phase {
	lo := make([]bool, k)
	hi := make([]bool, k)
	for j := 0; j < k-1; j++ {
		lo[j], hi[j] = true, true
	}
	hi[k-1] = true
	return []Phase{{In: lo, Weight: 0.5}, {In: hi, Weight: 0.5}}
}

// StressDuties returns, per transistor (aligned with Transistors()),
// the fraction of time the activity pattern keeps it stressed.
func (l *LUT) StressDuties(phases []Phase) ([]float64, error) {
	if len(phases) == 0 {
		return nil, errors.New("lutk: no phases")
	}
	sum := 0.0
	for _, ph := range phases {
		if ph.Weight < 0 {
			return nil, fmt.Errorf("lutk: negative phase weight %v", ph.Weight)
		}
		sum += ph.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("lutk: phase weights sum to %v, want 1", sum)
	}
	all := l.Transistors()
	pos := make(map[*device.Transistor]int, len(all))
	for i, tr := range all {
		pos[tr] = i
	}
	duties := make([]float64, len(all))
	for _, ph := range phases {
		stressed, err := l.Stressed(ph.In)
		if err != nil {
			return nil, err
		}
		for _, tr := range stressed {
			duties[pos[tr]] += ph.Weight
		}
	}
	for i := range duties {
		duties[i] = units.Clamp(duties[i], 0, 1)
	}
	return duties, nil
}

// MeasuredDelay returns the phase-weighted POI delay in nanoseconds.
func (l *LUT) MeasuredDelay(vdd units.Volt, phases []Phase) (float64, error) {
	if len(phases) == 0 {
		return 0, errors.New("lutk: no phases")
	}
	total, weight := 0.0, 0.0
	for _, ph := range phases {
		d, err := l.PathDelay(vdd, ph.In)
		if err != nil {
			return 0, err
		}
		total += ph.Weight * d
		weight += ph.Weight
	}
	if weight < 0.999 || weight > 1.001 {
		return 0, fmt.Errorf("lutk: phase weights sum to %v, want 1", weight)
	}
	return total, nil
}
