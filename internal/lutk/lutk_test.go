package lutk

import (
	"math"
	"testing"
	"testing/quick"

	"selfheal/internal/device"
	"selfheal/internal/lut"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

func newLUT(t *testing.T, k int) *LUT {
	t.Helper()
	l, err := New("K", k, device.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func bits(k, idx int) []bool {
	in := make([]bool, k)
	for j := 0; j < k; j++ {
		in[j] = idx>>j&1 == 1
	}
	return in
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 0, device.DefaultParams()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New("x", MaxK+1, device.DefaultParams()); err == nil {
		t.Error("k too large accepted")
	}
}

func TestTransistorCount(t *testing.T) {
	for k := 1; k <= 6; k++ {
		l := newLUT(t, k)
		want := (1<<(k+1) - 2) + 3
		if got := l.TransistorCount(); got != want {
			t.Errorf("k=%d: count = %d, want %d", k, got, want)
		}
		if got := len(l.Transistors()); got != want {
			t.Errorf("k=%d: Transistors() = %d, want %d", k, got, want)
		}
	}
}

// TestEvalExhaustive checks truth-table fidelity for k = 1..4 over all
// configurations sampled and all input vectors.
func TestEvalExhaustive(t *testing.T) {
	for k := 1; k <= 4; k++ {
		l := newLUT(t, k)
		// A hash-like truth table exercises both polarities everywhere.
		truth := make([]bool, 1<<k)
		for i := range truth {
			truth[i] = (i*2654435761)>>3&1 == 1
		}
		if err := l.Configure(truth); err != nil {
			t.Fatal(err)
		}
		for idx := 0; idx < 1<<k; idx++ {
			got, err := l.Eval(bits(k, idx))
			if err != nil {
				t.Fatal(err)
			}
			if got != truth[idx] {
				t.Errorf("k=%d idx=%d: Eval = %v, want %v", k, idx, got, truth[idx])
			}
		}
	}
}

func TestConfigureValidation(t *testing.T) {
	l := newLUT(t, 3)
	if err := l.Configure(make([]bool, 4)); err == nil {
		t.Error("short truth table accepted")
	}
	if _, err := l.Eval([]bool{true}); err == nil {
		t.Error("short input vector accepted")
	}
	if _, err := l.Stressed([]bool{true}); err == nil {
		t.Error("short input vector accepted by Stressed")
	}
	if _, err := l.ConductingPath([]bool{true}); err == nil {
		t.Error("short input vector accepted by ConductingPath")
	}
}

// TestMatchesLUT2 cross-validates the generic tree against the
// hand-built 2-input cell of package lut: same inverter configuration,
// same conducting-path depth and same stressed-device count for both
// static phases.
func TestMatchesLUT2(t *testing.T) {
	gen := newLUT(t, 2)
	gen.ConfigureInverter()
	ref := lut.New("ref", device.DefaultParams())
	ref.ConfigureInverter()

	for _, in0 := range []bool{false, true} {
		// lutk's inverter input is in[k−1]; lut's is in0. Same netlist
		// role: it selects the root mux level.
		in := []bool{true, in0}
		genPath, err := gen.ConductingPath(in)
		if err != nil {
			t.Fatal(err)
		}
		refPath := ref.ConductingPath(in0, true)
		if len(genPath) != len(refPath) {
			t.Errorf("in0=%v: path depth %d vs %d", in0, len(genPath), len(refPath))
		}
		genStressed, err := gen.Stressed(in)
		if err != nil {
			t.Fatal(err)
		}
		refStressed := ref.StressSet(in0, true)
		if len(genStressed) != len(refStressed) {
			t.Errorf("in0=%v: stressed %d vs %d devices", in0, len(genStressed), len(refStressed))
		}
	}
}

func TestPathDepthIsKPlus2(t *testing.T) {
	for k := 1; k <= 6; k++ {
		l := newLUT(t, k)
		l.ConfigureInverter()
		path, err := l.ConductingPath(bits(k, (1<<k)-1))
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != k+2 {
			t.Errorf("k=%d: POI depth = %d, want %d", k, len(path), k+2)
		}
	}
}

func TestFreshPathDelayScalesWithK(t *testing.T) {
	dp := device.DefaultParams()
	var prev float64
	for k := 2; k <= 6; k++ {
		l, err := New("K", k, dp)
		if err != nil {
			t.Fatal(err)
		}
		l.ConfigureInverter()
		d, err := l.PathDelay(1.2, bits(k, 0))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k+2) * dp.Td0NS
		if math.Abs(d-want) > 1e-12 {
			t.Errorf("k=%d: fresh delay %v, want %v", k, d, want)
		}
		if d <= prev {
			t.Errorf("k=%d: delay not increasing with k", k)
		}
		prev = d
	}
}

// TestStressedCountProperty: for any configuration and input vector,
// the stressed set is a subset of the conducting devices plus exactly
// one buffer device, and its size is bounded by 2^k − 1 tree
// transistors + buffer + route.
func TestStressedCountProperty(t *testing.T) {
	f := func(cfgBits uint16, inBits uint8) bool {
		const k = 4
		l, err := New("p", k, device.DefaultParams())
		if err != nil {
			return false
		}
		truth := make([]bool, 1<<k)
		for i := range truth {
			truth[i] = cfgBits>>i&1 == 1
		}
		if err := l.Configure(truth); err != nil {
			return false
		}
		in := bits(k, int(inBits)&(1<<k-1))
		stressed, err := l.Stressed(in)
		if err != nil {
			return false
		}
		return len(stressed) <= (1<<k-1)+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStressedDeterministic is Hypothesis 1 for arbitrary k.
func TestStressedDeterministic(t *testing.T) {
	l := newLUT(t, 5)
	l.ConfigureInverter()
	in := bits(5, 17)
	a, err := l.Stressed(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Stressed(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic stressed set: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stressed set ordering changed")
		}
	}
}

func TestExactlyOneBufferStressed(t *testing.T) {
	for k := 1; k <= 5; k++ {
		l := newLUT(t, k)
		l.ConfigureInverter()
		for idx := 0; idx < 1<<k; idx++ {
			stressed, err := l.Stressed(bits(k, idx))
			if err != nil {
				t.Fatal(err)
			}
			bufs := 0
			for _, tr := range stressed {
				if tr == l.bufP || tr == l.bufN {
					bufs++
				}
			}
			if bufs != 1 {
				t.Errorf("k=%d idx=%d: %d buffer devices stressed, want 1", k, idx, bufs)
			}
		}
	}
}

func TestInverterPhases(t *testing.T) {
	dc := InverterDCPhase(4, true)
	if len(dc) != 1 || !dc[0].In[3] || !dc[0].In[0] || dc[0].Weight != 1 {
		t.Errorf("DC phase = %+v", dc)
	}
	if low := InverterDCPhase(4, false); low[0].In[3] || !low[0].In[0] {
		t.Errorf("DC low phase = %+v", low)
	}
	ac := InverterACPhase(4)
	if len(ac) != 2 || ac[0].In[3] || !ac[1].In[3] || !ac[0].In[0] {
		t.Errorf("AC phases = %+v", ac)
	}
	if ac[0].Weight+ac[1].Weight != 1 {
		t.Error("AC weights do not sum to 1")
	}
}

func TestStressDutiesValidation(t *testing.T) {
	l := newLUT(t, 3)
	l.ConfigureInverter()
	if _, err := l.StressDuties(nil); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := l.StressDuties([]Phase{{In: bits(3, 0), Weight: 0.4}}); err == nil {
		t.Error("weights not summing to 1 accepted")
	}
	if _, err := l.StressDuties([]Phase{{In: bits(3, 0), Weight: -1}, {In: bits(3, 1), Weight: 2}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := l.MeasuredDelay(1.2, nil); err == nil {
		t.Error("MeasuredDelay with no phases accepted")
	}
	if _, err := l.MeasuredDelay(1.2, []Phase{{In: bits(3, 0), Weight: 0.2}}); err == nil {
		t.Error("MeasuredDelay with bad weights accepted")
	}
}

// relDegradation stresses an inverter-configured k-LUT for 24 h at
// 110 °C under the given activity and returns the oscillation-averaged
// relative POI delay degradation.
func relDegradation(t *testing.T, k int, ac bool) float64 {
	t.Helper()
	tp := td.DefaultParams()
	hot := units.Celsius(110).Kelvin()
	l := newLUT(t, k)
	l.ConfigureInverter()
	osc := InverterACPhase(k)
	fresh, err := l.MeasuredDelay(1.2, osc)
	if err != nil {
		t.Fatal(err)
	}
	activity := InverterDCPhase(k, true)
	if ac {
		activity = osc
	}
	duties, err := l.StressDuties(activity)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range l.Transistors() {
		if duties[i] > 0 {
			tr.Stress(tp, 1.2, hot, duties[i], 24*units.Hour)
		}
	}
	aged, err := l.MeasuredDelay(1.2, osc)
	if err != nil {
		t.Fatal(err)
	}
	return (aged - fresh) / fresh
}

// TestAgingAcrossK is the ref-[18]-style LUT-implementation study at
// unit scale, pinning two structural findings of the pass-transistor
// tree:
//
//  1. Under DC stress the *relative* degradation is k-invariant: each
//     extra mux level adds one stressed on-path transistor and one unit
//     of fresh path depth, so the two cancel.
//  2. Under AC stress larger LUTs degrade *more* relatively: the
//     statically selected lower levels stay under DC stress (config
//     cells never toggle) and their count grows with k, while the
//     toggling devices only accumulate the reduced AC shift.
func TestAgingAcrossK(t *testing.T) {
	ks := []int{2, 4, 6}
	var dc, ac []float64
	for _, k := range ks {
		dc = append(dc, relDegradation(t, k, false))
		ac = append(ac, relDegradation(t, k, true))
	}
	for i, k := range ks {
		if dc[i] <= 0 || ac[i] <= 0 {
			t.Fatalf("k=%d: no degradation (dc=%v ac=%v)", k, dc[i], ac[i])
		}
	}
	// Finding 1: DC relative degradation k-invariant (±2 %).
	for i := 1; i < len(ks); i++ {
		if math.Abs(dc[i]-dc[0])/dc[0] > 0.02 {
			t.Errorf("DC degradation not k-invariant: k=%d %.5f vs k=2 %.5f", ks[i], dc[i], dc[0])
		}
	}
	// Finding 2: AC relative degradation strictly grows with k, and the
	// AC/DC ratio rises toward DC.
	for i := 1; i < len(ks); i++ {
		if ac[i] <= ac[i-1] {
			t.Errorf("AC degradation not increasing: k=%d %.5f vs k=%d %.5f",
				ks[i], ac[i], ks[i-1], ac[i-1])
		}
	}
	if r2, r6 := ac[0]/dc[0], ac[2]/dc[2]; r6 <= r2 {
		t.Errorf("AC/DC ratio not rising with k: %.3f (k=2) vs %.3f (k=6)", r2, r6)
	}
}

func TestReset(t *testing.T) {
	l := newLUT(t, 3)
	l.ConfigureInverter()
	tp := td.DefaultParams()
	l.Transistors()[0].Stress(tp, 1.2, units.Celsius(110).Kelvin(), 1, units.Hour)
	l.Reset()
	for _, tr := range l.Transistors() {
		if tr.VthShift() != 0 {
			t.Fatalf("%s not reset", tr.Name)
		}
	}
}

func BenchmarkStressedK6(b *testing.B) {
	l, err := New("b", 6, device.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	l.ConfigureInverter()
	in := bits(6, 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Stressed(in); err != nil {
			b.Fatal(err)
		}
	}
}
