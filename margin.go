package selfheal

import (
	"fmt"
	"math"

	"selfheal/internal/margin"
	"selfheal/internal/units"
)

// Mission describes a duty-cycled service profile for sign-off margin
// budgeting: hot operation interleaved with (optional) rejuvenation
// sleep.
type Mission struct {
	// ActiveTempC, ActiveVdd and ActivityDuty describe operation.
	ActiveTempC, ActiveVdd, ActivityDuty float64
	// ActiveHours and SleepHours shape one cycle; SleepHours = 0 means
	// the part never rests.
	ActiveHours, SleepHours float64
	// SleepTempC and SleepVdd are the rejuvenation conditions (SleepVdd
	// ≤ 0; ignored when SleepHours is 0).
	SleepTempC, SleepVdd float64
}

// AlwaysOnMission is the conventional design target: a hot server that
// never sleeps.
func AlwaysOnMission() Mission {
	return Mission{
		ActiveTempC: 85, ActiveVdd: 1.2, ActivityDuty: 0.5,
		ActiveHours: 24,
	}
}

// CircadianMission is the paper's proposal applied to the same server:
// α = 4 with combined-condition sleep.
func CircadianMission() Mission {
	m := AlwaysOnMission()
	m.SleepHours = 6
	m.SleepTempC = 110
	m.SleepVdd = -0.3
	return m
}

func (m Mission) internal() margin.Mission {
	return margin.Mission{
		ActiveTempC:  units.Celsius(m.ActiveTempC),
		ActiveVdd:    units.Volt(m.ActiveVdd),
		ActivityDuty: m.ActivityDuty,
		ActiveHours:  m.ActiveHours,
		SleepHours:   m.SleepHours,
		SleepTempC:   units.Celsius(m.SleepTempC),
		SleepVdd:     units.Volt(m.SleepVdd),
	}
}

// RequiredMarginPct returns the BTI delay margin (percent of fresh path
// delay, including the safety factor ≥ 1) a design must ship to cover
// the mission for the given years.
func RequiredMarginPct(m Mission, years, safetyFactor float64) (float64, error) {
	v, err := margin.NewCalculator().RequiredMarginPct(m.internal(), years, safetyFactor)
	if err != nil {
		return 0, fmt.Errorf("selfheal: %w", err)
	}
	return v, nil
}

// LifetimeYears returns how long the mission can run before the given
// margin (percent of fresh delay) is exhausted; +Inf when the bounded
// rejuvenated envelope never reaches it within 200 years.
func LifetimeYears(m Mission, marginPct float64) (float64, error) {
	v, err := margin.NewCalculator().LifetimeYears(m.internal(), marginPct)
	if err != nil {
		return 0, fmt.Errorf("selfheal: %w", err)
	}
	return v, nil
}

// MissionRelaxationPct returns how much of the baseline mission's
// required margin the rejuvenated mission saves over the given years —
// the paper's design-margin-relaxed parameter at mission scale.
func MissionRelaxationPct(baseline, rejuvenated Mission, years float64) (float64, error) {
	v, err := margin.NewCalculator().RelaxationPct(baseline.internal(), rejuvenated.internal(), years)
	if err != nil {
		return 0, fmt.Errorf("selfheal: %w", err)
	}
	return v, nil
}

// IsUnbounded reports whether a lifetime returned by LifetimeYears
// means "never exhausted within the search horizon".
func IsUnbounded(lifetimeYears float64) bool { return math.IsInf(lifetimeYears, 1) }
