package selfheal

import (
	"errors"
	"fmt"

	"selfheal/internal/fpga"
	"selfheal/internal/netlist"
	"selfheal/internal/rng"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

// Logic is a real circuit (currently a ripple-carry adder)
// technology-mapped onto the simulated fabric: its outputs are computed
// through the actual LUT cells, its timing through static timing
// analysis over their aged transistors — so a workload's input
// statistics decide exactly which devices wear out, and rejuvenation
// heals whatever the workload stressed.
type Logic struct {
	bits   int
	placed *netlist.Placed
	chip   *fpga.Chip
	engine *stress.Engine
	fresh  float64
	src    *rng.Source
}

// NewAdderLogic maps a bits-wide ripple-carry adder onto a fresh chip.
func NewAdderLogic(bits int, seed uint64) (*Logic, error) {
	if bits <= 0 || bits > 16 {
		return nil, fmt.Errorf("selfheal: adder width %d outside 1..16", bits)
	}
	circ, err := netlist.RippleAdder(bits)
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	src := rng.New(seed)
	chip, err := fpga.NewChip(fmt.Sprintf("adder%d", bits), fpga.DefaultParams(), src.Split())
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	placed, err := netlist.Place(circ, chip)
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	eng := stress.New(chip)
	eng.StressIdleCells = false
	l := &Logic{bits: bits, placed: placed, chip: chip, engine: eng, src: src}
	l.fresh, err = placed.CriticalPathNS(1.2)
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	return l, nil
}

// Bits returns the adder width.
func (l *Logic) Bits() int { return l.bits }

// FreshCriticalPathNS returns the critical path of the fresh design.
func (l *Logic) FreshCriticalPathNS() float64 { return l.fresh }

// CriticalPathNS runs static timing analysis over the present aging
// state and returns the critical-path delay in nanoseconds.
func (l *Logic) CriticalPathNS() (float64, error) {
	d, err := l.placed.CriticalPathNS(1.2)
	if err != nil {
		return 0, fmt.Errorf("selfheal: %w", err)
	}
	return d, nil
}

// Add computes a + b + carry *through the mapped LUT cells* and returns
// the sum and carry-out. Operands must fit the adder width.
func (l *Logic) Add(a, b uint64, carry bool) (sum uint64, cout bool, err error) {
	limit := uint64(1)<<l.bits - 1
	if a > limit || b > limit {
		return 0, false, fmt.Errorf("selfheal: operands exceed %d bits", l.bits)
	}
	in := make([]bool, 2*l.bits+1)
	for i := 0; i < l.bits; i++ {
		in[i] = a>>i&1 == 1
		in[l.bits+i] = b>>i&1 == 1
	}
	in[2*l.bits] = carry
	out, err := l.placed.Eval(in)
	if err != nil {
		return 0, false, fmt.Errorf("selfheal: %w", err)
	}
	for i := 0; i < l.bits; i++ {
		if out[i] {
			sum |= 1 << i
		}
	}
	return sum, out[l.bits], nil
}

// StressWithWorkload ages the design for hours under the operating
// condition while it processes inputs whose bits are 1 with probability
// oneBias (0.5 = uniform random operands; 0 = idle all-zero inputs, the
// worst case).
func (l *Logic) StressWithWorkload(cond StressCondition, hours, oneBias float64) error {
	if hours <= 0 {
		return errors.New("selfheal: stress duration must be positive")
	}
	if oneBias < 0 || oneBias > 1 {
		return fmt.Errorf("selfheal: oneBias %v outside [0,1]", oneBias)
	}
	const rows = 256
	trace := make([][]bool, rows)
	for i := range trace {
		row := make([]bool, 2*l.bits+1)
		for j := range row {
			row[j] = l.src.Bernoulli(oneBias)
		}
		trace[i] = row
	}
	phases, err := l.placed.Activity(trace)
	if err != nil {
		return fmt.Errorf("selfheal: %w", err)
	}
	eng := stress.New(l.chip)
	eng.StressIdleCells = false
	if err := eng.AddActivity(stress.Activity{Mapping: l.placed.Mapping, CellPhases: phases}); err != nil {
		return fmt.Errorf("selfheal: %w", err)
	}
	if err := eng.Step(units.Volt(cond.Vdd), units.Celsius(cond.TempC),
		units.HoursToSeconds(hours)); err != nil {
		return fmt.Errorf("selfheal: %w", err)
	}
	return nil
}

// Rejuvenate sleeps the design for hours under the recovery condition.
func (l *Logic) Rejuvenate(cond SleepCondition, hours float64) error {
	if hours <= 0 {
		return errors.New("selfheal: sleep duration must be positive")
	}
	if cond.Vdd > 0 {
		return errors.New("selfheal: sleep rail must be ≤ 0")
	}
	if err := l.engine.Step(units.Volt(cond.Vdd), units.Celsius(cond.TempC),
		units.HoursToSeconds(hours)); err != nil {
		return fmt.Errorf("selfheal: %w", err)
	}
	return nil
}
