package selfheal

// One benchmark per table and figure of the paper's evaluation. Each
// BenchmarkTableN / BenchmarkFigureN regenerates exactly the artifact
// the paper prints (workload, parameter sweep, baseline and rendering
// included), so `go test -bench=.` re-derives the entire evaluation.
// The shared lab (the five-chip Table 1 schedule) is executed once and
// reused, mirroring how the paper's chips carry their history across
// experiments; its cost is measured separately by BenchmarkLabRunAll.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"selfheal/internal/exp"
	"selfheal/internal/lru"
)

var (
	benchLab     *exp.Lab
	benchLabOnce sync.Once
	benchLabErr  error
)

func sharedBenchLab(b *testing.B) *exp.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab = exp.NewLab(2014)
		benchLabErr = benchLab.RunAll()
	})
	if benchLabErr != nil {
		b.Fatal(benchLabErr)
	}
	return benchLab
}

// BenchmarkLabRunAll measures the full Table 1 schedule: five chips,
// eleven cases, burn-ins, chamber ramps and periodic read-outs.
func BenchmarkLabRunAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := exp.NewLab(uint64(2014 + i))
		if err := lab.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := exp.Figure1()
		if len(f.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Table1()
		if len(t.Rows) != 11 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 runs the long-horizon wearout-vs-rejuvenation
// comparison (two fresh chips, eight 30 h cycles each).
func BenchmarkFigure9(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 runs the three-scheduler multi-core comparison
// (8 cores × 30 days × 3 schedulers).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ta, err := lab.Headline()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(ta.Notes[0], "HEADLINE") {
			b.Fatal("missing verdict")
		}
	}
}

// BenchmarkReproducePaper measures the entire evaluation end to end —
// every table and figure from a cold start.
func BenchmarkReproducePaper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ReproducePaper(uint64(2014 + i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension-study benchmarks: the ablations and prior-art comparisons
// in EXPERIMENTS.md's extension section.

func BenchmarkExtensionE1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExtensionE1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExtensionE2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE3(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ExtensionE3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE4(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ExtensionE4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE6(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ExtensionE6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExtensionE7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExtensionE8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChipStressHour is the micro-benchmark behind everything:
// one hour of chip-level stress integration (2304 transistors).
func BenchmarkChipStressHour(b *testing.B) {
	chip, err := NewChip("bench", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chip.Stress(AcceleratedStress(), 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictCache measures the fleet service's memoization
// strategy: a prediction request answered through the bounded LRU memo
// cache (internal/lru, the cache behind internal/serve's engine).
// Every simulation is deterministic given its parameters, so only the
// first iteration pays for the 30-day circadian run — compare against
// BenchmarkMulticoreMonth, which pays it every time.
func BenchmarkPredictCache(b *testing.B) {
	cache, err := lru.New[string, MulticoreOutcome](16)
	if err != nil {
		b.Fatal(err)
	}
	key := fmt.Sprintf("multicore|%s|%d|%g", CircadianScheduler, 6, 30.0)
	for i := 0; i < b.N; i++ {
		if _, ok := cache.Get(key); ok {
			continue
		}
		out, err := RunMulticore(CircadianScheduler, 6, 30)
		if err != nil {
			b.Fatal(err)
		}
		cache.Add(key, out)
	}
	if hits, misses := cache.Stats(); b.N > 1 && hits != uint64(b.N-1) {
		b.Fatalf("cache hits = %d, want %d (misses %d)", hits, b.N-1, misses)
	}
}

// BenchmarkMulticoreMonth measures one circadian 30-day run.
func BenchmarkMulticoreMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunMulticore(CircadianScheduler, 6, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleComparison measures a 10-day three-policy sweep.
func BenchmarkScheduleComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := CompareSchedules(uint64(i), 10,
			NoRecoveryPolicy(),
			ProactivePolicy(4, 6, AcceleratedSleep()),
			ReactivePolicy(0.5, 0.25, AcceleratedSleep()),
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExtensionE9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE10(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ExtensionE10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE11(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ExtensionE11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE5(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ExtensionE5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionE12(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ExtensionE12(); err != nil {
			b.Fatal(err)
		}
	}
}
