package selfheal

import (
	"fmt"
	"strings"

	"selfheal/internal/exp"
)

// Artifact is one regenerated table or figure from the paper's
// evaluation, rendered as plain text.
type Artifact struct {
	ID      string // "Table 4", "Figure 8", …
	Caption string
	Text    string // rendered table or ASCII chart
}

// PaperReport holds every regenerated artifact of the DAC'14
// evaluation, in the paper's order.
type PaperReport struct {
	Artifacts []Artifact
}

// Render concatenates all artifacts into one printable report.
func (r *PaperReport) Render() string {
	var b strings.Builder
	for i, a := range r.Artifacts {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(a.Text)
	}
	return b.String()
}

// Find returns the artifact with the given ID, if present.
func (r *PaperReport) Find(id string) (Artifact, bool) {
	for _, a := range r.Artifacts {
		if a.ID == id {
			return a, true
		}
	}
	return Artifact{}, false
}

// ReproducePaper runs the paper's full accelerated-test schedule
// (Table 1: five chips, eleven cases, with baseline burn-ins, chamber
// ramps and periodic counter read-outs) plus the long-horizon and
// multi-core simulations, and regenerates every table and figure.
// The seed fixes process variation and measurement noise; the run is
// deterministic and takes on the order of a second.
func ReproducePaper(seed uint64) (*PaperReport, error) {
	lab := exp.NewLab(seed)
	if err := lab.RunAll(); err != nil {
		return nil, fmt.Errorf("selfheal: running the paper schedule: %w", err)
	}

	report := &PaperReport{}
	addF := func(f exp.Figure, err error) error {
		if err != nil {
			return err
		}
		report.Artifacts = append(report.Artifacts, Artifact{ID: f.ID, Caption: f.Caption, Text: f.Render()})
		return nil
	}
	addT := func(t exp.TableArtifact, err error) error {
		if err != nil {
			return err
		}
		report.Artifacts = append(report.Artifacts, Artifact{ID: t.ID, Caption: t.Caption, Text: t.Render()})
		return nil
	}

	if err := addF(exp.Figure1(), nil); err != nil {
		return nil, err
	}
	if err := addT(exp.Table1(), nil); err != nil {
		return nil, err
	}
	steps := []func() error{
		func() error { f, err := lab.Figure4(); return addF(f, err) },
		func() error { f, err := lab.Figure5(); return addF(f, err) },
		func() error { t, err := lab.Table2(); return addT(t, err) },
		func() error { t, err := lab.Table3(); return addT(t, err) },
		func() error {
			figs, err := lab.Figure6()
			if err != nil {
				return err
			}
			for _, f := range figs {
				if err := addF(f, nil); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			figs, err := lab.Figure7()
			if err != nil {
				return err
			}
			for _, f := range figs {
				if err := addF(f, nil); err != nil {
					return err
				}
			}
			return nil
		},
		func() error { f, err := lab.Figure8(); return addF(f, err) },
		func() error { t, err := lab.Table4(); return addT(t, err) },
		func() error { t, err := lab.Table5(); return addT(t, err) },
		func() error { f, err := lab.Figure9(); return addF(f, err) },
		func() error { t, err := exp.Figure10(); return addT(t, err) },
		func() error { t, err := lab.Headline(); return addT(t, err) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, fmt.Errorf("selfheal: %w", err)
		}
	}
	return report, nil
}

// ExportMeasurements runs the paper schedule and writes every case's
// measurement series into dir as CSV files ("AS110DC24_chip2.csv", …):
// delay degradation for stress cases, recovered delay for recovery
// cases — the inputs cmd/selfheal-fit extracts Table 3 parameters from.
// It returns the written file names.
func ExportMeasurements(seed uint64, dir string) ([]string, error) {
	lab := exp.NewLab(seed)
	names, err := lab.DumpCSV(dir)
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	return names, nil
}

// ReproduceExtensions runs the evaluation extensions that go beyond the
// paper's printed artifacts: the LUT-size aging study (E1, after the
// paper's ref [18]), the GNOMO mitigation comparison (E2, refs
// [12,13]), the active:sleep ratio sweep (E3), the negative-rail sweep
// with on-chip feasibility (E4), workload-driven aging of mapped logic
// (E6) and the §7 virtual-circadian margin analysis (E7).
func ReproduceExtensions(seed uint64) (*PaperReport, error) {
	lab := exp.NewLab(seed)
	arts, err := lab.Extensions()
	if err != nil {
		return nil, fmt.Errorf("selfheal: running extensions: %w", err)
	}
	report := &PaperReport{}
	for _, a := range arts {
		report.Artifacts = append(report.Artifacts, Artifact{
			ID: a.ID, Caption: a.Caption, Text: a.Render(),
		})
	}
	return report, nil
}
