package selfheal

import (
	"context"
	"fmt"

	"selfheal/internal/multicore"
	"selfheal/internal/units"
)

// MulticoreScheduler names a core-scheduling strategy for the
// Section 6.2 exploration.
type MulticoreScheduler string

// The available multi-core schedulers.
const (
	// StaticScheduler pins the first N cores active forever.
	StaticScheduler MulticoreScheduler = "static"
	// RoundRobinScheduler rotates sleep slots with plain power gating.
	RoundRobinScheduler MulticoreScheduler = "round-robin"
	// CircadianScheduler rotates the most-aged cores into sleep with
	// the negative recovery rail, letting busy neighbours heat them —
	// the paper's proposal.
	CircadianScheduler MulticoreScheduler = "circadian"
)

// MulticoreOutcome summarizes one scheduled multi-core run.
type MulticoreOutcome struct {
	Scheduler string
	// WorstPct is the slowest core's critical-path degradation — it
	// sets the shared clock's margin.
	WorstPct float64
	// MeanPct and SpreadPct describe the aging balance across cores.
	MeanPct, SpreadPct float64
	// HealSlots counts core-slots spent in accelerated recovery;
	// CoreSlots counts delivered compute (identical across schedulers
	// for a fair comparison).
	HealSlots, CoreSlots int
	// PerCorePct and TemperatureC are the final per-core degradation
	// and temperature maps (row-major 2×4 floorplan).
	PerCorePct   []float64
	TemperatureC []float64
}

// RunMulticore simulates an 8-core system delivering `demand` cores of
// throughput for `days` days in six-hour slots under the named
// scheduler.
func RunMulticore(scheduler MulticoreScheduler, demand int, days float64) (MulticoreOutcome, error) {
	return RunMulticoreContext(context.Background(), scheduler, demand, days)
}

// RunMulticoreContext is RunMulticore with cooperative cancellation:
// the context is honoured between slots, so long explorations driven
// by a server or pipeline abort promptly when the caller goes away.
func RunMulticoreContext(ctx context.Context, scheduler MulticoreScheduler, demand int, days float64) (MulticoreOutcome, error) {
	var sch multicore.Scheduler
	switch scheduler {
	case StaticScheduler:
		sch = multicore.Static{}
	case RoundRobinScheduler:
		sch = multicore.RoundRobin{}
	case CircadianScheduler:
		sch = multicore.Circadian{}
	default:
		return MulticoreOutcome{}, fmt.Errorf("selfheal: unknown scheduler %q", scheduler)
	}
	if err := checkFinite("multicore span (days)", days); err != nil {
		return MulticoreOutcome{}, err
	}
	if days <= 0 {
		return MulticoreOutcome{}, fmt.Errorf("selfheal: days must be positive, got %v", days)
	}
	sys, err := multicore.New(multicore.DefaultParams())
	if err != nil {
		return MulticoreOutcome{}, fmt.Errorf("selfheal: %w", err)
	}
	const slotHours = 6
	slots := int(days * 24 / slotHours)
	if slots < 1 {
		slots = 1
	}
	out, err := sys.RunContext(ctx, sch, demand, slots, slotHours*units.Hour)
	if err != nil {
		return MulticoreOutcome{}, fmt.Errorf("selfheal: %w", err)
	}
	temps := make([]float64, len(out.Temperatures))
	for i, t := range out.Temperatures {
		temps[i] = float64(t)
	}
	return MulticoreOutcome{
		Scheduler:    out.Scheduler,
		WorstPct:     out.WorstPct,
		MeanPct:      out.MeanPct,
		SpreadPct:    out.SpreadPct,
		HealSlots:    out.HealSlots,
		CoreSlots:    out.CoreSlots,
		PerCorePct:   out.PerCorePct,
		TemperatureC: temps,
	}, nil
}
