package selfheal

import (
	"errors"
	"fmt"

	"selfheal/internal/fpga"
	"selfheal/internal/odometer"
	"selfheal/internal/rng"
	"selfheal/internal/stress"
	"selfheal/internal/units"
)

// MonitoredChip is a chip carrying a Silicon-Odometer-style aging
// sensor (the paper's ref [7]): a stressed oscillator and a protected
// reference oscillator read out differentially at part-per-million
// resolution — the monitoring infrastructure reactive rejuvenation
// policies rely on.
//
// Unlike Chip (which models the paper's external bench with its
// thermal chamber and counter read-out), MonitoredChip exposes the
// bare die plus the on-die sensor: Stress and Rejuvenate apply
// conditions directly.
type MonitoredChip struct {
	chip   *fpga.Chip
	engine *stress.Engine
	sensor *odometer.Sensor
}

// OdometerReading is one differential sensor read-out.
type OdometerReading struct {
	// BeatHz is the beat frequency between the reference and stressed
	// oscillators.
	BeatHz float64
	// DegradationPPM is the measured frequency degradation in parts
	// per million (±2 ppm read-out noise).
	DegradationPPM float64
}

// NewMonitoredChip fabricates a chip with the odometer pair mapped and
// wired: the stressed oscillator follows the workload, the reference
// sits on a gated power island.
func NewMonitoredChip(id string, seed uint64) (*MonitoredChip, error) {
	if id == "" {
		return nil, errors.New("selfheal: chip id must not be empty")
	}
	src := rng.New(seed)
	chip, err := fpga.NewChip(id, fpga.DefaultParams(), src.Split())
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	eng := stress.New(chip)
	sensor, err := odometer.New(chip, eng, id+".odo", odometer.DefaultParams(), src.Split())
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	return &MonitoredChip{chip: chip, engine: eng, sensor: sensor}, nil
}

// ID returns the chip identifier.
func (m *MonitoredChip) ID() string { return m.chip.ID() }

// Stress runs the die under the operating condition for hours.
func (m *MonitoredChip) Stress(cond StressCondition, hours float64) error {
	if err := checkPhaseArgs("stress", hours, 0); err != nil {
		return err
	}
	if err := checkFinite("stress temperature (°C)", cond.TempC); err != nil {
		return err
	}
	if err := checkFinite("stress rail (V)", cond.Vdd); err != nil {
		return err
	}
	if cond.Vdd <= 0 {
		return fmt.Errorf("selfheal: stress condition needs a positive rail, got %v V", cond.Vdd)
	}
	if err := m.engine.Step(units.Volt(cond.Vdd), units.Celsius(cond.TempC),
		units.HoursToSeconds(hours)); err != nil {
		return fmt.Errorf("selfheal: %w", err)
	}
	return nil
}

// Rejuvenate puts the die to sleep under the recovery condition for
// hours.
func (m *MonitoredChip) Rejuvenate(cond SleepCondition, hours float64) error {
	if err := checkPhaseArgs("sleep", hours, 0); err != nil {
		return err
	}
	if err := checkFinite("sleep temperature (°C)", cond.TempC); err != nil {
		return err
	}
	if err := checkFinite("sleep rail (V)", cond.Vdd); err != nil {
		return err
	}
	if cond.Vdd > 0 {
		return fmt.Errorf("selfheal: sleep rail must be ≤ 0 (gated or negative), got %v V", cond.Vdd)
	}
	if err := m.engine.Step(units.Volt(cond.Vdd), units.Celsius(cond.TempC),
		units.HoursToSeconds(hours)); err != nil {
		return fmt.Errorf("selfheal: %w", err)
	}
	return nil
}

// Read takes one differential sensor measurement at the nominal rail.
func (m *MonitoredChip) Read() (OdometerReading, error) {
	r, err := m.sensor.Measure(m.chip.Params().NominalVdd)
	if err != nil {
		return OdometerReading{}, fmt.Errorf("selfheal: %w", err)
	}
	return OdometerReading{BeatHz: r.BeatHz, DegradationPPM: r.DegradationPPM}, nil
}
