// Command engine-smoke is the fleet-aging-engine smoke test CI runs
// after the observability smoke: it builds selfheal-serve, boots it
// with the engine ticking fast, loads 50k chips through the batch APIs
// (a fleet-backed slice plus engine-native bulk registrations), lets
// 100 epochs elapse while concurrent readers watch the snapshots, and
// verifies the reads were monotone, the odometers advanced, the epoch
// lag stayed bounded, and the Prometheus exposition kept its per-chip
// cardinality capped.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

const (
	totalChips  = 50_000
	fleetChips  = 1_000 // fabricated through the fleet API; the rest bulk-register
	batchSize   = 1_000
	wantEpochs  = 100
	epochPeriod = 25 * time.Millisecond
	maxLagSecs  = 5.0 // generous: a 1-CPU CI box ticking 50k chips
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "engine-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func freePort() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("reserve port: %v", err)
	}
	defer l.Close()
	return l.Addr().String()
}

func get(url string, wantStatus int) []byte {
	resp, err := http.Get(url)
	if err != nil {
		fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		fatalf("GET %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

func post(url, body string, wantStatus int) []byte {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("POST %s: read body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		fatalf("POST %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, raw)
	}
	return raw
}

// engineStatus mirrors the GET /v1/engine body.
type engineStatus struct {
	Enabled bool `json:"enabled"`
	Stats   struct {
		Epoch           uint64  `json:"epoch"`
		Chips           int     `json:"chips"`
		EpochLagSeconds float64 `json:"epoch_lag_seconds"`
		ChipsPerSecond  float64 `json:"chips_per_second"`
		AdvanceError    string  `json:"advance_error,omitempty"`
	} `json:"stats"`
}

func status(base string) engineStatus {
	var st engineStatus
	if err := json.Unmarshal(get(base+"/v1/engine", http.StatusOK), &st); err != nil {
		fatalf("decode engine status: %v", err)
	}
	return st
}

func main() {
	tmp, err := os.MkdirTemp("", "engine-smoke-")
	if err != nil {
		fatalf("tempdir: %v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "selfheal-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/selfheal-serve")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		fatalf("build selfheal-serve: %v", err)
	}

	addr := freePort()
	srv := exec.Command(bin,
		"-addr", addr,
		"-engine",
		"-epoch", epochPeriod.String(),
		"-log-level", "warn",
		"-grace", "2s",
	)
	srv.Stdout, srv.Stderr = os.Stdout, os.Stderr
	if err := srv.Start(); err != nil {
		fatalf("start server: %v", err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}()

	base := "http://" + addr
	up := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				up = true
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		fatalf("server never became healthy")
	}

	// ---- Load the fleet: a fabricated slice plus engine-native bulk. ----
	loadStart := time.Now()
	var specs []string
	for i := 0; i < fleetChips; i++ {
		specs = append(specs, fmt.Sprintf(`{"id":"f%05d","seed":%d}`, i, i+1))
	}
	var created struct {
		Created int `json:"created"`
		Failed  int `json:"failed"`
	}
	raw := post(base+"/v1/chips:batch", `{"chips":[`+strings.Join(specs, ",")+`]}`, http.StatusOK)
	if err := json.Unmarshal(raw, &created); err != nil {
		fatalf("decode fleet batch response: %v", err)
	}
	if created.Created != fleetChips || created.Failed != 0 {
		fatalf("fleet batch created %d / failed %d, want %d / 0", created.Created, created.Failed, fleetChips)
	}

	for start := fleetChips; start < totalChips; start += batchSize {
		specs = specs[:0]
		for i := start; i < start+batchSize && i < totalChips; i++ {
			// A mix of duty cycles and schedules, like a real fleet.
			switch i % 3 {
			case 0:
				specs = append(specs, fmt.Sprintf(`{"id":"e%05d","temp_c":80,"vdd":1.2,"duty":1}`, i))
			case 1:
				specs = append(specs, fmt.Sprintf(`{"id":"e%05d","temp_c":105,"vdd":1.32,"duty":0.5}`, i))
			default:
				specs = append(specs, fmt.Sprintf(
					`{"id":"e%05d","temp_c":80,"vdd":1.2,"duty":1,"schedule":{"stress_epochs":8,"sleep_epochs":4,"sleep_temp_c":40,"sleep_vdd":-0.3}}`, i))
			}
		}
		var reg struct {
			Registered int `json:"registered"`
			Failed     int `json:"failed"`
		}
		if err := json.Unmarshal(post(base+"/v1/engine/chips:batch",
			`{"chips":[`+strings.Join(specs, ",")+`]}`, http.StatusOK), &reg); err != nil {
			fatalf("decode engine batch response: %v", err)
		}
		if reg.Failed != 0 {
			fatalf("engine batch starting at %d: %d failed", start, reg.Failed)
		}
	}
	st := status(base)
	if st.Stats.Chips != totalChips {
		fatalf("engine holds %d chips after load, want %d", st.Stats.Chips, totalChips)
	}
	fmt.Printf("engine-smoke: loaded %d chips in %v (epoch %d already ticking)\n",
		totalChips, time.Since(loadStart).Round(time.Millisecond), st.Stats.Epoch)

	// ---- Watch 100 epochs elapse with concurrent monotone readers. ----
	startEpoch := st.Stats.Epoch
	target := startEpoch + wantEpochs
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := uint64(0)
			lastOdo := -1.0
			// Any engine chip works: odometers only ever advance.
			probe := fmt.Sprintf("e%05d", fleetChips+3*(r+1))
			for !stop.Load() {
				st := status(base)
				if st.Stats.Epoch < last {
					errc <- fmt.Sprintf("reader %d: epoch went backwards: %d after %d", r, st.Stats.Epoch, last)
					return
				}
				last = st.Stats.Epoch
				if st.Stats.Chips != totalChips {
					errc <- fmt.Sprintf("reader %d: snapshot holds %d chips, want %d", r, st.Stats.Chips, totalChips)
					return
				}
				var cv struct {
					Odometer float64 `json:"odometer_epochs"`
				}
				if err := json.Unmarshal(get(base+"/v1/engine/chips/"+probe, http.StatusOK), &cv); err != nil {
					errc <- fmt.Sprintf("reader %d: decode chip view: %v", r, err)
					return
				}
				if cv.Odometer < lastOdo {
					errc <- fmt.Sprintf("reader %d: %s odometer went backwards: %v after %v", r, probe, cv.Odometer, lastOdo)
					return
				}
				lastOdo = cv.Odometer
				time.Sleep(10 * time.Millisecond)
			}
		}(r)
	}

	maxLag := 0.0
	deadline := time.Now().Add(3 * time.Minute)
	for {
		st = status(base)
		if st.Stats.EpochLagSeconds > maxLag {
			maxLag = st.Stats.EpochLagSeconds
		}
		if st.Stats.AdvanceError != "" {
			fatalf("engine reported advance error: %s", st.Stats.AdvanceError)
		}
		if st.Stats.Epoch >= target {
			break
		}
		if time.Now().After(deadline) {
			fatalf("engine reached only epoch %d of %d before the deadline", st.Stats.Epoch, target)
		}
		time.Sleep(50 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errc:
		fatalf("%s", msg)
	default:
	}
	if maxLag > maxLagSecs {
		fatalf("epoch lag peaked at %.2fs, bound is %.2fs", maxLag, maxLagSecs)
	}

	// ---- A DC chip's odometer matches the epochs it lived through. ----
	var cv struct {
		Odometer uint64 `json:"odometer_epochs"`
	}
	if err := json.Unmarshal(get(base+"/v1/engine/chips/e01002", http.StatusOK), &cv); err != nil {
		fatalf("decode final chip view: %v", err)
	}
	if cv.Odometer == 0 {
		fatalf("DC chip e01002 never aged")
	}

	// ---- Cardinality stays capped with 50k chips registered. ----
	prom := string(get(base+"/metrics?format=prometheus", http.StatusOK))
	for _, want := range []string{
		fmt.Sprintf("selfheal_engine_chips %d", totalChips),
		"selfheal_engine_epoch ",
		"selfheal_engine_chips_per_second",
		fmt.Sprintf("selfheal_chips %d", fleetChips),
	} {
		if !strings.Contains(prom, want) {
			fatalf("prometheus exposition missing %q", want)
		}
	}
	if n := strings.Count(prom, "selfheal_engine_chip_odometer_epochs{"); n == 0 || n > 50 {
		fatalf("engine per-chip odometer series = %d, want 1..50", n)
	}
	if n := strings.Count(prom, "selfheal_chip_ops_total{"); n > 50 {
		fatalf("fleet per-chip ops series = %d, want <= 50", n)
	}

	fmt.Printf("engine-smoke: PASS — %d chips, %d epochs, peak lag %.3fs, %.0f chips/sec last tick\n",
		totalChips, wantEpochs, maxLag, st.Stats.ChipsPerSecond)
}
