// Command guard-smoke is the red-team/blue-team smoke test CI runs
// after the engine smoke: it builds selfheal-serve and boots TWO
// servers from the same binary on manual engine clocks, with the same
// seeded wearout adversary — a defended fleet (guard with stock
// detection) and an undefended control (guard blinded with
// astronomically high thresholds, so the attack runs unopposed) —
// loads 10k chips into each, paces both simulations epoch by epoch
// over HTTP, and verifies the paper's headline end to end: the
// defended guard detects the attack within a bounded number of epochs,
// quarantines/remaps/rejuvenates the victims automatically (mutations
// 503 with code "quarantined" and a Retry-After while reads keep
// serving), recovers ≥90% of the attack-induced margin loss, and holds
// the victim's stress exposure to ≤1/3 of the control victim's — while
// the control demonstrably drifts.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

const (
	totalChips = 10_000
	fleetChips = 500 // fabricated through the fleet API; the adversary's hunting ground
	batchSize  = 1_000

	// The adversary: two victims, dc-stress at 110C/1.32V, total
	// sleep-window denial, cancellation spam half the epochs. The
	// attack opens after the whole fleet has aged uniformly for a
	// while, so onset is observable against a settled baseline.
	advSpec  = "seed=11,victims=2,start=120,deny_p=1,cancel_p=0.5"
	advStart = uint64(120)

	// Defended blue team: stock detection, with long rejuvenation
	// windows so the victim's quarantine duty cycle stays low.
	defendSpec = "rejuv_epochs=16"
	// Undefended control: the same guard applies the adversary's moves
	// but its detector is blinded, so nothing is ever convicted.
	blindSpec = "sigma=1e9,rate_floor=1e9"

	// Bounds. Detection is expected ~4 epochs after the attack lands
	// (2 outlier deltas convict once the damage gate clears); 15
	// leaves margin.
	maxAlertEpochs = 15
	watchEpochs    = 100 // measurement window after attack onset
	minRecoverFrac = 0.9 // of the victim's margin loss, peak to valley
	maxStressRatio = 1.0 / 3.0
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "guard-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func freePort() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("reserve port: %v", err)
	}
	defer l.Close()
	return l.Addr().String()
}

func get(url string, wantStatus int) []byte {
	resp, err := http.Get(url)
	if err != nil {
		fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		fatalf("GET %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

func post(url, body string, wantStatus int) []byte {
	resp, raw := postRaw(url, body)
	if resp.StatusCode != wantStatus {
		fatalf("POST %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, raw)
	}
	return raw
}

// postRaw returns the response unchecked — the quarantine-contract
// probes need to branch on the status instead of dying.
func postRaw(url, body string) (*http.Response, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("POST %s: read body: %v", url, err)
	}
	return resp, raw
}

// guardStatus mirrors the GET /v1/guard body (the fields we use).
type guardStatus struct {
	Enabled bool `json:"enabled"`
	Status  *struct {
		Epoch       uint64 `json:"epoch"`
		Quarantined []struct {
			Chip     string  `json:"chip"`
			OnsetVth float64 `json:"onset_vth_v"`
			PeakVth  float64 `json:"peak_vth_v"`
		} `json:"quarantined"`
		Metrics struct {
			AlertsTotal             uint64 `json:"alerts_total"`
			QuarantinedChips        int    `json:"quarantined_chips"`
			RemapsTotal             uint64 `json:"remaps_total"`
			RejuvenationEpochsTotal uint64 `json:"rejuvenation_epochs_total"`
			ReleasesTotal           uint64 `json:"releases_total"`
		} `json:"metrics"`
		Adversary *struct {
			Victims []string `json:"victims"`
		} `json:"adversary,omitempty"`
	} `json:"status,omitempty"`
}

// chipView mirrors the GET /v1/engine/chips/{id} body (the fields we use).
type chipView struct {
	VthShift float64 `json:"vth_shift_v"`
	Odometer uint64  `json:"odometer_epochs"`
}

type server struct {
	name string
	base string
	cmd  *exec.Cmd
}

func (s *server) guard() guardStatus {
	var st guardStatus
	if err := json.Unmarshal(get(s.base+"/v1/guard", http.StatusOK), &st); err != nil {
		fatalf("%s: decode guard status: %v", s.name, err)
	}
	if !st.Enabled || st.Status == nil {
		fatalf("%s: guard not enabled in status body", s.name)
	}
	return st
}

func (s *server) chip(id string) chipView {
	var cv chipView
	if err := json.Unmarshal(get(s.base+"/v1/engine/chips/"+id, http.StatusOK), &cv); err != nil {
		fatalf("%s: decode chip view %s: %v", s.name, id, err)
	}
	return cv
}

// tick advances the manual engine clock n epochs and returns the new
// epoch.
func (s *server) tick(n uint64) uint64 {
	var resp struct {
		Epoch uint64 `json:"epoch"`
	}
	raw := post(s.base+"/v1/engine/tick", fmt.Sprintf(`{"epochs":%d}`, n), http.StatusOK)
	if err := json.Unmarshal(raw, &resp); err != nil {
		fatalf("%s: decode tick response: %v", s.name, err)
	}
	return resp.Epoch
}

// tickTo advances to the target epoch in bounded bites.
func (s *server) tickTo(target uint64) {
	cur := s.tick(1)
	for cur < target {
		n := target - cur
		if n > 50 {
			n = 50
		}
		cur = s.tick(n)
	}
	if cur != target {
		fatalf("%s: overshot epoch %d ticking to %d", s.name, cur, target)
	}
}

func boot(bin, name string, extra ...string) *server {
	addr := freePort()
	args := append([]string{
		"-addr", addr,
		"-engine",
		"-epoch=-1s", // manual clock: this driver paces the simulation
		"-log-level", "error",
		"-grace", "2s",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("start %s server: %v", name, err)
	}
	s := &server{name: name, base: "http://" + addr, cmd: cmd}
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(s.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return s
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	fatalf("%s server never became healthy", name)
	return nil
}

// loadFleet fabricates the fleet-API slice the adversary hunts in.
func loadFleet(s *server) {
	specs := make([]string, 0, fleetChips)
	for i := 0; i < fleetChips; i++ {
		specs = append(specs, fmt.Sprintf(`{"id":"f%05d","seed":%d,"kind":"monitored"}`, i, i+1))
	}
	var created struct {
		Created int `json:"created"`
		Failed  int `json:"failed"`
	}
	raw := post(s.base+"/v1/chips:batch", `{"chips":[`+strings.Join(specs, ",")+`]}`, http.StatusOK)
	if err := json.Unmarshal(raw, &created); err != nil {
		fatalf("%s: decode fleet batch response: %v", s.name, err)
	}
	if created.Created != fleetChips || created.Failed != 0 {
		fatalf("%s: fleet batch created %d / failed %d, want %d / 0",
			s.name, created.Created, created.Failed, fleetChips)
	}
}

// loadBulk registers the engine-native rest of the 10k fleet.
func loadBulk(s *server) {
	for start := fleetChips; start < totalChips; start += batchSize {
		specs := make([]string, 0, batchSize)
		for i := start; i < start+batchSize && i < totalChips; i++ {
			specs = append(specs, fmt.Sprintf(`{"id":"e%05d","temp_c":80,"vdd":1.2,"duty":1}`, i))
		}
		var reg struct {
			Registered int `json:"registered"`
			Failed     int `json:"failed"`
		}
		if err := json.Unmarshal(post(s.base+"/v1/engine/chips:batch",
			`{"chips":[`+strings.Join(specs, ",")+`]}`, http.StatusOK), &reg); err != nil {
			fatalf("%s: decode engine batch response: %v", s.name, err)
		}
		if reg.Failed != 0 {
			fatalf("%s: engine batch starting at %d: %d failed", s.name, start, reg.Failed)
		}
	}
}

// victims returns the adversary's picks; the first tick must already
// have published a snapshot holding the fleet.
func victims(s *server) []string {
	st := s.guard()
	if st.Status.Adversary == nil || len(st.Status.Adversary.Victims) == 0 {
		fatalf("%s: adversary picked no victims by epoch %d", s.name, st.Status.Epoch)
	}
	return st.Status.Adversary.Victims
}

// checkQuarantineContract exercises the per-chip 503 surface while the
// victim is held: mutations refuse with code "quarantined" and a
// Retry-After on both the fleet and engine APIs, reads keep serving.
// The clock is manual, so nothing can release the chip mid-probe.
func checkQuarantineContract(s *server, victim string) {
	resp, body := postRaw(s.base+"/v1/chips/"+victim+"/stress", `{"temp_c":85,"vdd":1.2,"hours":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		fatalf("stress on quarantined %s: status %d, body %s", victim, resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"code": "quarantined"`) {
		fatalf("quarantined 503 body missing code: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		fatalf("quarantined 503 missing Retry-After")
	}
	// Reads keep serving: the fleet list and the quarantined chip's own
	// engine view. (Sensor reads commit — measuring ages the die — so
	// they are refused like any mutation.)
	get(s.base+"/v1/chips", http.StatusOK)
	get(s.base+"/v1/engine/chips/"+victim, http.StatusOK)
	// The engine surface — where the adversary's own moves land —
	// refuses identically.
	resp, body = postRaw(s.base+"/v1/engine/chips/"+victim+"/condition", `{"temp_c":110,"vdd":1.32,"duty":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "quarantined") {
		fatalf("engine condition on quarantined %s: status %d, body %s", victim, resp.StatusCode, body)
	}
}

func main() {
	tmp, err := os.MkdirTemp("", "guard-smoke-")
	if err != nil {
		fatalf("tempdir: %v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "selfheal-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/selfheal-serve")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		fatalf("build selfheal-serve: %v", err)
	}

	defended := boot(bin, "defended", "-guard", "-guard-spec", defendSpec, "-adversary", advSpec)
	control := boot(bin, "control", "-guard", "-guard-spec", blindSpec, "-adversary", advSpec)
	defer func() {
		for _, s := range []*server{defended, control} {
			s.cmd.Process.Signal(syscall.SIGTERM)
			s.cmd.Wait()
		}
	}()

	// ---- Arm both arenas: load 10k chips each, then age the whole ----
	// ---- fleet uniformly to just before attack onset and baseline. ----
	loadStart := time.Now()
	var wg sync.WaitGroup
	for _, s := range []*server{defended, control} {
		wg.Add(1)
		go func(s *server) { defer wg.Done(); loadFleet(s); loadBulk(s) }(s)
	}
	wg.Wait()
	fmt.Printf("guard-smoke: 2x%d chips loaded in %v\n", totalChips, time.Since(loadStart).Round(time.Millisecond))

	defended.tickTo(advStart - 1)
	control.tickTo(advStart - 1)
	dVictims := victims(defended)
	cVictims := victims(control)
	primary, cPrimary := dVictims[0], cVictims[0]
	dBase := defended.chip(primary)
	cBase := control.chip(cPrimary)
	fmt.Printf("guard-smoke: defended victims %v, control victims %v, attack opens at epoch %d\n",
		dVictims, cVictims, advStart)

	// ---- Pace the defended arena epoch by epoch through the window. ----
	var (
		firstQuarEpoch uint64
		contractDone   bool
		peakVth        = dBase.VthShift
		valleyVth      = dBase.VthShift
	)
	var dst guardStatus
	for epoch := advStart; epoch < advStart+watchEpochs; epoch++ {
		defended.tick(1)
		dst = defended.guard()
		roster := map[string]bool{}
		for _, q := range dst.Status.Quarantined {
			roster[q.Chip] = true
		}
		if firstQuarEpoch == 0 && len(roster) > 0 {
			firstQuarEpoch = dst.Status.Epoch
		}
		if !contractDone && roster[primary] {
			checkQuarantineContract(defended, primary)
			contractDone = true
		}
		cv := defended.chip(primary)
		if cv.VthShift > peakVth {
			peakVth = cv.VthShift
		}
		if dst.Status.Metrics.ReleasesTotal > 0 && cv.VthShift < valleyVth {
			valleyVth = cv.VthShift
		}
	}

	// Detection: bounded alert latency from attack onset.
	if firstQuarEpoch == 0 {
		fatalf("defended guard never quarantined; metrics %+v", dst.Status.Metrics)
	}
	if lat := firstQuarEpoch - advStart; lat > maxAlertEpochs {
		fatalf("alert latency %d epochs (quarantine at %d, onset %d), bound %d",
			lat, firstQuarEpoch, advStart, maxAlertEpochs)
	}
	if !contractDone {
		fatalf("victim %s never observed on the quarantine roster", primary)
	}
	m := dst.Status.Metrics
	if m.AlertsTotal == 0 || m.RemapsTotal == 0 || m.RejuvenationEpochsTotal == 0 || m.ReleasesTotal == 0 {
		fatalf("defended loop incomplete: %+v", m)
	}

	// The alert feed names the victim chips.
	var alerts struct {
		Alerts []struct {
			Kind string `json:"kind"`
			Chip string `json:"chip"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal(get(defended.base+"/v1/guard/alerts", http.StatusOK), &alerts); err != nil {
		fatalf("decode alerts: %v", err)
	}
	kinds := map[string]bool{}
	victimAlerted := false
	for _, a := range alerts.Alerts {
		kinds[a.Kind] = true
		if a.Kind == "quarantined" && a.Chip == primary {
			victimAlerted = true
		}
	}
	for _, k := range []string{"aging-rate-outlier", "quarantined", "remapped", "rejuvenation-scheduled", "released"} {
		if !kinds[k] {
			fatalf("alert feed missing kind %q; got %v", k, kinds)
		}
	}
	if !victimAlerted {
		fatalf("no quarantine alert names victim %s", primary)
	}

	// Margin recovery: the rejuvenated valley recovers ≥90% of the
	// victim's margin loss (baseline → attack peak).
	loss := peakVth - dBase.VthShift
	recovered := peakVth - valleyVth
	if loss <= 0 {
		fatalf("victim %s never lost margin (peak %.3g, base %.3g)", primary, peakVth, dBase.VthShift)
	}
	frac := recovered / loss
	if frac < minRecoverFrac {
		fatalf("margin recovery %.1f%% (peak %.3g, valley %.3g, base %.3g), want ≥ %.0f%%",
			100*frac, peakVth, valleyVth, dBase.VthShift, 100*minRecoverFrac)
	}

	// ---- The undefended control over the same window: it drifts. ----
	control.tickTo(advStart + watchEpochs)
	cst := control.guard()
	if cst.Status.Metrics.QuarantinedChips != 0 || cst.Status.Metrics.ReleasesTotal != 0 {
		fatalf("blinded control quarantined something: %+v", cst.Status.Metrics)
	}
	bystander := ""
	for i := 0; i < fleetChips && bystander == ""; i++ {
		id := fmt.Sprintf("f%05d", i)
		hit := false
		for _, v := range cVictims {
			hit = hit || v == id
		}
		if !hit {
			bystander = id
		}
	}
	cVictimView := control.chip(cPrimary)
	bystanderView := control.chip(bystander)
	if cVictimView.VthShift < 2*bystanderView.VthShift {
		fatalf("control victim %s did not drift: vth %.3g vs bystander %.3g",
			cPrimary, cVictimView.VthShift, bystanderView.VthShift)
	}
	dVictimView := defended.chip(primary)
	if dVictimView.VthShift >= cVictimView.VthShift/2 {
		fatalf("defended victim vth %.3g not clearly below drifting control %.3g",
			dVictimView.VthShift, cVictimView.VthShift)
	}

	// Stress time: epochs the victim spent in a stress phase since its
	// pre-onset baseline. The defended victim sleeps through
	// rejuvenation windows and its attacker is blocked while held; the
	// control victim is dc-stressed the whole window.
	dStress := dVictimView.Odometer - dBase.Odometer
	cStress := cVictimView.Odometer - cBase.Odometer
	if cStress == 0 {
		fatalf("control victim accrued no stress epochs")
	}
	ratio := float64(dStress) / float64(cStress)
	if ratio > maxStressRatio {
		fatalf("defended victim stress time %d epochs vs control %d (ratio %.2f), want ≤ %.2f",
			dStress, cStress, ratio, maxStressRatio)
	}

	// ---- Prometheus carries the guard series, cardinality capped. ----
	prom := string(get(defended.base+"/metrics?format=prometheus", http.StatusOK))
	for _, want := range []string{
		"guard_alerts_total", "guard_quarantined_chips", "guard_remaps_total",
		"guard_rejuvenation_epochs_total", "guard_releases_total",
	} {
		if !strings.Contains(prom, want) {
			fatalf("prometheus exposition missing %q", want)
		}
	}
	if n := strings.Count(prom, "guard_chip_quarantined{"); n > 50 {
		fatalf("guard per-chip quarantine series = %d, want <= 50", n)
	}

	fmt.Printf("guard-smoke: PASS — detected in %d epochs, %.0f%% margin recovered "+
		"(peak %.3g → valley %.3g V), stress ratio %.2f (defended %d vs control %d epochs), "+
		"control drifted to %.3g V (bystander %.3g V)\n",
		firstQuarEpoch-advStart, 100*frac, peakVth, valleyVth, ratio, dStress, cStress,
		cVictimView.VthShift, bystanderView.VthShift)
}
