// Command telemetry-smoke is the observability smoke test CI runs
// after the cluster smoke: it builds selfheal-serve, boots a
// three-primary fleet with the aging engine ticking on a fast wall
// clock (node "a" in semisync replication to a hot standby), creates
// chips through the routing client, then drives mutations at the
// WRONG node with a hand-minted Traceparent so the 307 wrong_node
// forward carries the trace to the owner. It asserts:
//
//   - the minted trace id appears in /debug/traces on BOTH the
//     forwarder and the owner, each half labelled with its node_id
//     (cross-node trace stitching, end to end over real processes);
//   - GET /v1/fleet/telemetry from any node returns per-epoch series
//     for every live peer with zero stale sections;
//   - the margin-recovery SLO — the paper's ≥90% headline held as a
//     standing objective — is green on every node;
//   - /metrics?federate=1 exposes per-node scrape health;
//   - after kill -9 of node "c", the fleet view from "a" marks "c"
//     stale with an error while the survivors stay fresh: a dead node
//     is a hole in the view, not a failure of the view.
//
// Build knob: TELEMETRY_SMOKE_RACE=1 builds the server with -race.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"selfheal/client"
)

const httpDeadline = 60 * time.Second

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "telemetry-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func freePort() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("reserve port: %v", err)
	}
	defer l.Close()
	return l.Addr().String()
}

var hc = &http.Client{Timeout: httpDeadline}

func get(url string) (int, []byte) {
	resp, err := hc.Get(url)
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

type node struct {
	id      string
	base    string
	repl    string
	dataDir string
	cmd     *exec.Cmd
}

func (n *node) start(bin, peers string, extra ...string) {
	args := append([]string{
		"-addr", strings.TrimPrefix(n.base, "http://"),
		"-data", n.dataDir,
		"-node-id", n.id,
		"-peers", peers,
		"-log-level", "error",
		"-grace", "2s",
	}, extra...)
	n.cmd = exec.Command(bin, args...)
	n.cmd.Stdout, n.cmd.Stderr = os.Stdout, os.Stderr
	if err := n.cmd.Start(); err != nil {
		fatalf("start node %s: %v", n.id, err)
	}
}

func waitHealthy(name, base string) {
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		if st, _ := get(base + "/healthz"); st == http.StatusOK {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	fatalf("%s never became healthy at %s", name, base)
}

// Minimal views of the wire bodies this smoke reads; decoupled from
// the serve types on purpose, like the other smokes.
type traceView struct {
	TraceID string `json:"trace_id"`
	NodeID  string `json:"node_id"`
	Route   string `json:"route"`
	Status  int    `json:"status"`
}

type tracesBody struct {
	Traces []traceView `json:"traces"`
}

type sloStatus struct {
	SLO string `json:"slo"`
	OK  bool   `json:"ok"`
}

type nodeTelemetry struct {
	NodeID    string `json:"node_id"`
	Error     string `json:"error"`
	Stale     bool   `json:"stale"`
	Telemetry *struct {
		Epoch  uint64                       `json:"epoch"`
		Series map[string][]json.RawMessage `json:"series"`
		SLO    []sloStatus                  `json:"slo"`
	} `json:"telemetry"`
}

type fleetBody struct {
	NodeID     string          `json:"node_id"`
	Nodes      []nodeTelemetry `json:"nodes"`
	StaleNodes int             `json:"stale_nodes"`
}

func fleetOf(base string) fleetBody {
	st, raw := get(base + "/v1/fleet/telemetry")
	if st != http.StatusOK {
		fatalf("GET %s/v1/fleet/telemetry: status %d: %s", base, st, raw)
	}
	var fb fleetBody
	if err := json.Unmarshal(raw, &fb); err != nil {
		fatalf("decode fleet telemetry: %v", err)
	}
	return fb
}

// tracesWith returns the node's retained traces carrying traceID.
func tracesWith(base, traceID string) []traceView {
	st, raw := get(base + "/debug/traces?limit=200")
	if st != http.StatusOK {
		fatalf("GET %s/debug/traces: status %d: %s", base, st, raw)
	}
	var tb tracesBody
	if err := json.Unmarshal(raw, &tb); err != nil {
		fatalf("decode traces: %v", err)
	}
	var hits []traceView
	for _, tv := range tb.Traces {
		if tv.TraceID == traceID {
			hits = append(hits, tv)
		}
	}
	return hits
}

func main() {
	start := time.Now()
	race := os.Getenv("TELEMETRY_SMOKE_RACE") == "1"

	tmp, err := os.MkdirTemp("", "telemetry-smoke-")
	if err != nil {
		fatalf("mkdtemp: %v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "selfheal-serve")
	buildArgs := []string{"build"}
	if race {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", bin, "./cmd/selfheal-serve")
	build := exec.Command("go", buildArgs...)
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		fatalf("build selfheal-serve (race=%v): %v", race, err)
	}

	// Three engine-ticking primaries; "a" semisync into a hot standby.
	nodes := map[string]*node{}
	for _, id := range []string{"a", "b", "c"} {
		nodes[id] = &node{
			id:      id,
			base:    "http://" + freePort(),
			repl:    freePort(),
			dataDir: filepath.Join(tmp, "data-"+id),
		}
	}
	peerSpecs := make([]string, 0, 3)
	for _, id := range []string{"a", "b", "c"} {
		peerSpecs = append(peerSpecs, id+"="+nodes[id].base)
	}
	peers := strings.Join(peerSpecs, ",")

	engineArgs := []string{"-engine", "-epoch", "200ms", "-guard"}
	nodes["a"].start(bin, peers, append([]string{"-repl-listen", nodes["a"].repl, "-repl-mode", "semisync"}, engineArgs...)...)
	nodes["b"].start(bin, peers, append([]string{"-repl-listen", nodes["b"].repl, "-repl-mode", "async"}, engineArgs...)...)
	nodes["c"].start(bin, peers, engineArgs...)
	defer func() {
		for _, n := range nodes {
			if n.cmd != nil && n.cmd.Process != nil {
				n.cmd.Process.Kill()
			}
		}
	}()
	for _, id := range []string{"a", "b", "c"} {
		waitHealthy("node "+id, nodes[id].base)
	}

	standby := &node{id: "a", base: "http://" + freePort(), dataDir: filepath.Join(tmp, "data-standby")}
	standby.start(bin, peers, "-repl-follow", nodes["a"].repl, "-advertise", standby.base)
	defer func() {
		if standby.cmd != nil && standby.cmd.Process != nil {
			standby.cmd.Process.Kill()
		}
	}()
	waitHealthy("standby", standby.base)
	fmt.Printf("telemetry-smoke: 3 engine-ticking primaries + standby up (race=%v)\n", race)

	// Chips through the routing client (batch partitions fan out under
	// one client-minted trace id per call).
	peerURLs := map[string]string{"a": nodes["a"].base, "b": nodes["b"].base, "c": nodes["c"].base}
	cl, err := client.NewCluster(peerURLs, 0, client.WithHTTPClient(&http.Client{Timeout: httpDeadline}))
	if err != nil {
		fatalf("cluster client: %v", err)
	}
	ctx := context.Background()
	const chips = 300
	specs := make([]client.CreateChipRequest, chips)
	ids := make([]string, chips)
	for i := range specs {
		ids[i] = fmt.Sprintf("t%04d", i)
		specs[i] = client.CreateChipRequest{ID: ids[i], Seed: uint64(i + 1), Kind: "monitored"}
	}
	if resp, err := cl.BatchCreateChips(ctx, specs); err != nil || resp.Failed != 0 {
		fatalf("batch create: err=%v failed=%d", err, resp.Failed)
	}

	// Mutations through forwards, under a hand-minted trace: POST the
	// stress to a node that does NOT own the chip; it answers 307
	// wrong_node, the redirect replays at the owner with the same
	// Traceparent, and both halves land in the two nodes' trace rings
	// under the one id.
	var forwarder, owner, chip string
	for _, id := range ids {
		if o := cl.Owner(id); o != "b" {
			forwarder, owner, chip = "b", o, id
			break
		}
	}
	if chip == "" {
		fatalf("every chip hashed to node b; ring is broken")
	}
	buf := make([]byte, 8)
	if _, err := rand.Read(buf); err != nil {
		fatalf("mint trace id: %v", err)
	}
	traceID := hex.EncodeToString(buf)
	req, err := http.NewRequest(http.MethodPost,
		nodes[forwarder].base+"/v1/chips/"+chip+"/stress",
		strings.NewReader(`{"temp_c":80,"vdd":1.0,"hours":0.5}`))
	if err != nil {
		fatalf("build stress request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", "00-"+traceID+"-0-01")
	resp, err := hc.Do(req) // default client follows the 307, replaying headers
	if err != nil {
		fatalf("stress via non-owner: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("stress via non-owner: status %d: %s", resp.StatusCode, body)
	}
	if echoed := resp.Header.Get("X-Trace-ID"); echoed != traceID {
		fatalf("X-Trace-ID echo = %q, want minted id %q", echoed, traceID)
	}

	stitched := 0
	for _, id := range []string{forwarder, owner} {
		hits := tracesWith(nodes[id].base, traceID)
		if len(hits) == 0 {
			fatalf("node %s retained no trace with the minted id %s", id, traceID)
		}
		for _, h := range hits {
			if h.NodeID != id {
				fatalf("node %s retained trace half labelled %q", id, h.NodeID)
			}
		}
		stitched++
	}
	fmt.Printf("telemetry-smoke: trace %s stitched across %d nodes (%s -> %s)\n",
		traceID, stitched, forwarder, owner)

	// Fleet telemetry: from any node, every live peer fresh with
	// per-epoch series, and the margin-recovery SLO green everywhere.
	deadline := time.Now().Add(30 * time.Second)
	var fb fleetBody
	for {
		fb = fleetOf(nodes["a"].base)
		ready := len(fb.Nodes) == 3 && fb.StaleNodes == 0
		for _, n := range fb.Nodes {
			if n.Telemetry == nil || n.Telemetry.Epoch < 3 ||
				len(n.Telemetry.Series["margin_min_v"]) == 0 {
				ready = false
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			raw, _ := json.Marshal(fb)
			fatalf("fleet telemetry never converged to 3 fresh nodes: %s", raw)
		}
		time.Sleep(200 * time.Millisecond)
	}
	for _, n := range fb.Nodes {
		green := false
		for _, st := range n.Telemetry.SLO {
			if st.SLO == "margin_recovery" && st.OK {
				green = true
			}
		}
		if !green {
			fatalf("margin-recovery SLO not green on node %s: %+v", n.NodeID, n.Telemetry.SLO)
		}
	}
	fmt.Printf("telemetry-smoke: fleet telemetry fresh on 3 nodes, margin-recovery SLO green\n")

	// The Prometheus federation branch sees every node.
	st, raw := get(nodes["b"].base + "/metrics?federate=1")
	if st != http.StatusOK {
		fatalf("GET /metrics?federate=1: status %d", st)
	}
	for _, id := range []string{"a", "b", "c"} {
		want := fmt.Sprintf("telemetry_federate_up{node=%q} 1", id)
		if !strings.Contains(string(raw), want) {
			fatalf("/metrics?federate=1 missing %q", want)
		}
	}

	// Kill "c": the fleet view must mark it stale with an error while
	// the survivors stay fresh.
	nodes["c"].cmd.Process.Signal(os.Kill)
	nodes["c"].cmd.Wait()
	fb = fleetOf(nodes["a"].base)
	byID := map[string]nodeTelemetry{}
	for _, n := range fb.Nodes {
		byID[n.NodeID] = n
	}
	if n := byID["c"]; !n.Stale || n.Error == "" {
		fatalf("killed node c not marked stale-with-error: %+v", n)
	}
	for _, id := range []string{"a", "b"} {
		if byID[id].Stale {
			fatalf("survivor %s marked stale after c died", id)
		}
	}
	if fb.StaleNodes != 1 {
		fatalf("stale_nodes = %d after killing c, want 1", fb.StaleNodes)
	}

	fmt.Printf("telemetry-smoke: PASS in %.1fs (race=%v)\n", time.Since(start).Seconds(), race)
}
