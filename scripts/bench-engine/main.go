// Command bench-engine runs the engine tick benchmark at its three
// fleet sizes plus the td batch-vs-scalar kernel benchmarks, and
// writes the results as machine-readable JSON to BENCH_engine.json —
// the artifact `make bench` refreshes so perf regressions show up in
// review diffs instead of anecdotes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// TickResult is one BenchmarkEngineTick size point.
type TickResult struct {
	Chips        int     `json:"chips"`
	NsPerChip    float64 `json:"ns_per_chip_epoch"`
	ChipsPerSec  float64 `json:"chips_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_epoch"`
	BytesPerOp   float64 `json:"bytes_per_epoch"`
	NsPerEpoch   float64 `json:"ns_per_epoch"`
	BenchmarkRun string  `json:"benchmark"`
}

// KernelResult is one td-level kernel benchmark (the vectorized batch
// hot path vs the scalar model it must match).
type KernelResult struct {
	Name        string  `json:"benchmark"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Output is the BENCH_engine.json schema.
type Output struct {
	GoVersion   string         `json:"go_version"`
	EngineTick  []TickResult   `json:"engine_tick"`
	TdKernels   []KernelResult `json:"td_kernels"`
	BatchSpeedX float64        `json:"td_batch_speedup_x,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// metrics parses the "123 ns/op 4 B/op 5 allocs/op 97.3 ns/chip-epoch"
// tail of a benchmark line into unit → value.
func metrics(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	out := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		out[fields[i+1]] = v
	}
	return out
}

func run(pattern, pkg, benchtime string) []byte {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime, pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "bench-engine: %s on %s: %v\n%s", pattern, pkg, err, buf.String())
		os.Exit(1)
	}
	return buf.Bytes()
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output path")
	benchtime := flag.String("benchtime", "", "go test -benchtime (default: 1x for the 1M-chip tick, 100x kernels)")
	flag.Parse()

	tickTime, kernelTime := "1x", "100x"
	if *benchtime != "" {
		tickTime, kernelTime = *benchtime, *benchtime
	}

	res := Output{GoVersion: strings.TrimSpace(goVersion())}

	sc := bufio.NewScanner(bytes.NewReader(run("BenchmarkEngineTick", "./internal/engine", tickTime)))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil || !strings.HasPrefix(m[1], "BenchmarkEngineTick/") {
			continue
		}
		vals := metrics(m[3])
		var chips int
		if i := strings.Index(m[1], "chips="); i >= 0 {
			chips, _ = strconv.Atoi(strings.Split(m[1][i+6:], "-")[0])
		}
		res.EngineTick = append(res.EngineTick, TickResult{
			Chips:        chips,
			NsPerChip:    vals["ns/chip-epoch"],
			ChipsPerSec:  vals["chips/sec"],
			AllocsPerOp:  vals["allocs/op"],
			BytesPerOp:   vals["B/op"],
			NsPerEpoch:   vals["ns/op"],
			BenchmarkRun: m[1],
		})
	}
	if len(res.EngineTick) != 3 {
		fmt.Fprintf(os.Stderr, "bench-engine: parsed %d tick sizes, want 3\n", len(res.EngineTick))
		os.Exit(1)
	}

	// The kernel pair: the vectorized batch advance vs the scalar loop
	// over identical fleets. The speedup reported is at the larger size.
	var scalarNs, batchNs float64
	sc = bufio.NewScanner(bytes.NewReader(run("BenchmarkAdvanceBatch|BenchmarkScalarLoop", "./internal/td", kernelTime)))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		vals := metrics(m[3])
		kr := KernelResult{Name: m[1], NsPerOp: vals["ns/op"], AllocsPerOp: vals["allocs/op"]}
		if v, ok := vals["ns/chip-step"]; ok {
			// Normalize to the per-chip cost so scalar and batch compare.
			kr.NsPerOp = v
		}
		res.TdKernels = append(res.TdKernels, kr)
		if strings.Contains(m[1], "chips=65536") {
			switch {
			case strings.HasPrefix(m[1], "BenchmarkScalarLoop"):
				scalarNs = kr.NsPerOp
			case strings.HasPrefix(m[1], "BenchmarkAdvanceBatch"):
				batchNs = kr.NsPerOp
			}
		}
	}
	if scalarNs > 0 && batchNs > 0 {
		res.BatchSpeedX = scalarNs / batchNs
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-engine:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintln(os.Stderr, "bench-engine:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bench-engine:", err)
		os.Exit(1)
	}
	fmt.Printf("bench-engine: wrote %s (%d tick sizes, %d kernels", *out, len(res.EngineTick), len(res.TdKernels))
	if res.BatchSpeedX > 0 {
		fmt.Printf(", batch %.2fx scalar", res.BatchSpeedX)
	}
	fmt.Println(")")
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return ""
	}
	return string(out)
}
