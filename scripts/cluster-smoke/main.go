// Command cluster-smoke is the failover smoke test CI runs after the
// guard smoke: it builds selfheal-serve and boots a three-primary
// fleet (consistent-hash placement, durable journals, node "a" in
// semisync replication to a hot standby), loads 100k chips through the
// batch APIs with the routing cluster client, keeps mutation workers
// running, and then kill -9s node "a" mid-traffic. The surviving
// shards must keep serving throughout, the standby must promote over
// the replicated journal via POST /v1/cluster/promote, the peers and
// the client repoint "a" at the standby's address — and the audit must
// find every acknowledged operation intact: all acked creates present
// in the fleet, every chip's replayed op count at or above its acked
// count, and /readyz converged to 200 on all three node ids.
//
// Scale and build knobs (CI runs both a full pass and a race-detector
// pass at reduced scale):
//
//	CLUSTER_SMOKE_CHIPS  fleet size (default 100000; 5000 under race)
//	CLUSTER_SMOKE_RACE   1 builds the server binary with -race
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"selfheal/client"
)

const (
	batchSize    = 1_000
	workers      = 8
	stressHours  = 0.5
	trafficBeat  = 700 * time.Millisecond // per traffic window below
	httpDeadline = 120 * time.Second
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cluster-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func freePort() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("reserve port: %v", err)
	}
	defer l.Close()
	return l.Addr().String()
}

var hc = &http.Client{Timeout: httpDeadline}

func get(url string) (int, []byte) {
	resp, err := hc.Get(url)
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

func post(url, body string) (int, []byte) {
	resp, err := hc.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

type node struct {
	id      string
	base    string // http base URL
	repl    string // repl listen addr (primaries)
	dataDir string
	cmd     *exec.Cmd
}

func (n *node) start(bin, peers string, extra ...string) {
	args := append([]string{
		"-addr", strings.TrimPrefix(n.base, "http://"),
		"-data", n.dataDir,
		"-node-id", n.id,
		"-peers", peers,
		"-log-level", "error",
		"-grace", "2s",
	}, extra...)
	n.cmd = exec.Command(bin, args...)
	n.cmd.Stdout, n.cmd.Stderr = os.Stdout, os.Stderr
	if err := n.cmd.Start(); err != nil {
		fatalf("start node %s: %v", n.id, err)
	}
}

func waitHealthy(name, base string) {
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		if st, _ := get(base + "/healthz"); st == http.StatusOK {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	fatalf("%s never became healthy at %s", name, base)
}

// clusterStatus mirrors the GET /v1/cluster fields the smoke reads.
type clusterStatus struct {
	NodeID string `json:"node_id"`
	Role   string `json:"role"`
	Peers  []struct {
		ID   string `json:"id"`
		Addr string `json:"addr"`
	} `json:"peers"`
	Repl *struct {
		Role      string `json:"role"`
		Connected bool   `json:"connected"`
		LastSeq   uint64 `json:"last_seq"`
	} `json:"repl,omitempty"`
}

func clusterOf(base string) clusterStatus {
	st, raw := get(base + "/v1/cluster")
	if st != http.StatusOK {
		fatalf("GET %s/v1/cluster: status %d: %s", base, st, raw)
	}
	var cs clusterStatus
	if err := json.Unmarshal(raw, &cs); err != nil {
		fatalf("decode cluster status: %v", err)
	}
	return cs
}

// ackCounter tracks acknowledged (HTTP-success) mutations per chip —
// the ground truth the post-failover audit replays against.
type ackCounter struct {
	mu   sync.Mutex
	byID map[string]uint64
}

func (a *ackCounter) add(id string) {
	a.mu.Lock()
	a.byID[id]++
	a.mu.Unlock()
}

func (a *ackCounter) snapshot() map[string]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]uint64, len(a.byID))
	for k, v := range a.byID {
		out[k] = v
	}
	return out
}

func main() {
	start := time.Now()
	chips := 100_000
	race := os.Getenv("CLUSTER_SMOKE_RACE") == "1"
	if race {
		chips = 5_000
	}
	if v := os.Getenv("CLUSTER_SMOKE_CHIPS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 100 {
			fatalf("bad CLUSTER_SMOKE_CHIPS %q", v)
		}
		chips = n
	}

	tmp, err := os.MkdirTemp("", "cluster-smoke-")
	if err != nil {
		fatalf("mkdtemp: %v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "selfheal-serve")
	buildArgs := []string{"build"}
	if race {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", bin, "./cmd/selfheal-serve")
	build := exec.Command("go", buildArgs...)
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		fatalf("build selfheal-serve (race=%v): %v", race, err)
	}

	// Ring: three primaries; "a" runs semisync into a hot standby (it
	// is the one we kill), "b" and "c" replicate async.
	nodes := map[string]*node{}
	for _, id := range []string{"a", "b", "c"} {
		nodes[id] = &node{
			id:      id,
			base:    "http://" + freePort(),
			repl:    freePort(),
			dataDir: filepath.Join(tmp, "data-"+id),
		}
	}
	peerSpecs := make([]string, 0, 3)
	for _, id := range []string{"a", "b", "c"} {
		peerSpecs = append(peerSpecs, id+"="+nodes[id].base)
	}
	peers := strings.Join(peerSpecs, ",")

	nodes["a"].start(bin, peers, "-repl-listen", nodes["a"].repl, "-repl-mode", "semisync")
	nodes["b"].start(bin, peers, "-repl-listen", nodes["b"].repl, "-repl-mode", "async")
	nodes["c"].start(bin, peers, "-repl-listen", nodes["c"].repl, "-repl-mode", "async")
	defer func() {
		for _, n := range nodes {
			if n.cmd != nil && n.cmd.Process != nil {
				n.cmd.Process.Kill()
			}
		}
	}()
	for _, id := range []string{"a", "b", "c"} {
		waitHealthy("node "+id, nodes[id].base)
	}

	// The hot standby tails a's journal and will take over a's ring id.
	standby := &node{id: "a", base: "http://" + freePort(), dataDir: filepath.Join(tmp, "data-standby")}
	standby.start(bin, peers,
		"-repl-follow", nodes["a"].repl,
		"-advertise", standby.base)
	defer func() {
		if standby.cmd != nil && standby.cmd.Process != nil {
			standby.cmd.Process.Kill()
		}
	}()
	waitHealthy("standby", standby.base)
	if st, _ := get(standby.base + "/readyz"); st != http.StatusServiceUnavailable {
		fatalf("standby /readyz = %d, want 503 before promotion", st)
	}
	for deadline := time.Now().Add(15 * time.Second); ; {
		if cs := clusterOf(nodes["a"].base); cs.Repl != nil && cs.Repl.Connected {
			break
		}
		if time.Now().After(deadline) {
			fatalf("standby never attached to a's semisync stream")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("cluster-smoke: 3 primaries + standby up (%d chips, race=%v)\n", chips, race)

	// Load the fleet through the routing client's batch partitioner.
	peerURLs := map[string]string{"a": nodes["a"].base, "b": nodes["b"].base, "c": nodes["c"].base}
	cl, err := client.NewCluster(peerURLs, 0, client.WithHTTPClient(&http.Client{Timeout: httpDeadline}))
	if err != nil {
		fatalf("cluster client: %v", err)
	}
	ctx := context.Background()
	ids := make([]string, chips)
	for i := range ids {
		ids[i] = fmt.Sprintf("k%06d", i)
	}
	for lo := 0; lo < chips; lo += batchSize {
		hi := lo + batchSize
		if hi > chips {
			hi = chips
		}
		specs := make([]client.CreateChipRequest, 0, hi-lo)
		for i := lo; i < hi; i++ {
			// Monitored dies skip the bench burn-in sim: at 100k chips
			// fabrication, not the journal, is the load-time bottleneck.
			specs = append(specs, client.CreateChipRequest{ID: ids[i], Seed: uint64(i + 1), Kind: "monitored"})
		}
		resp, err := cl.BatchCreateChips(ctx, specs)
		if err != nil {
			fatalf("batch create [%d,%d): %v", lo, hi, err)
		}
		if resp.Failed != 0 {
			for _, r := range resp.Results {
				if r.Error != "" {
					fatalf("batch create [%d,%d): chip %s: %s", lo, hi, r.ID, r.Error)
				}
			}
		}
	}
	fmt.Printf("cluster-smoke: %d chips created via batch APIs in %.1fs\n", chips, time.Since(start).Seconds())

	// Every created chip is an acked mutation; audit ground truth.
	acks := &ackCounter{byID: make(map[string]uint64, chips)}
	owners := make(map[string]string, chips)
	perOwner := map[string]*atomic.Uint64{"a": {}, "b": {}, "c": {}}
	for _, id := range ids {
		owners[id] = cl.Owner(id)
	}

	// Sustained mutation traffic: workers stress random-ish chips and
	// count only HTTP-acknowledged successes, per chip and per owner.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i += workers {
				id := ids[i%len(ids)]
				_, err := cl.Stress(ctx, id, client.PhaseRequest{TempC: 80, Vdd: 1.0, Hours: stressHours})
				if err == nil {
					acks.add(id)
					perOwner[owners[id]].Add(1)
				} else {
					// Expected during the outage (dead node, open breaker);
					// don't let fast-fails spin a core the failover needs.
					time.Sleep(5 * time.Millisecond)
				}
			}
		}(w)
	}
	waitProgress := func(what string, deadline time.Duration, counters ...*atomic.Uint64) {
		before := make([]uint64, len(counters))
		for i, c := range counters {
			before[i] = c.Load()
		}
		end := time.Now().Add(deadline)
		for {
			advanced := true
			for i, c := range counters {
				if c.Load() == before[i] {
					advanced = false
				}
			}
			if advanced {
				return
			}
			if time.Now().After(end) {
				fatalf("%s: no acked writes within %v", what, deadline)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitProgress("warm-up traffic", time.Minute, perOwner["a"], perOwner["b"], perOwner["c"])
	time.Sleep(trafficBeat)

	// kill -9 the semisync primary mid-traffic.
	if err := syscall.Kill(nodes["a"].cmd.Process.Pid, syscall.SIGKILL); err != nil {
		fatalf("kill -9 node a: %v", err)
	}
	nodes["a"].cmd.Wait()
	fmt.Println("cluster-smoke: node a killed (SIGKILL) mid-traffic")

	// Surviving shards must keep taking writes while a is down.
	waitProgress("surviving shards during the outage", time.Minute, perOwner["b"], perOwner["c"])

	// Promote the standby over the replicated journal, then repoint
	// node id "a" everywhere: surviving peers and the routing client.
	// Promotion replays (re-fabricates) a's whole shard inside this one
	// request, so it gets its own generous deadline.
	promoteHC := &http.Client{Timeout: 15 * time.Minute}
	resp, err := promoteHC.Post(standby.base+"/v1/cluster/promote", "application/json", nil)
	if err != nil {
		fatalf("promote: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	st := resp.StatusCode
	if st != http.StatusOK {
		fatalf("promote: status %d: %s", st, raw)
	}
	var promoted struct {
		Chips    int `json:"chips"`
		Replayed int `json:"replayed_records"`
	}
	if err := json.Unmarshal(raw, &promoted); err != nil {
		fatalf("decode promote response: %v", err)
	}
	for _, id := range []string{"b", "c"} {
		body := fmt.Sprintf(`{"id":"a","addr":%q}`, standby.base)
		if st, raw := post(nodes[id].base+"/v1/cluster/peers", body); st != http.StatusOK {
			fatalf("repoint a on node %s: status %d: %s", id, st, raw)
		}
	}
	if err := cl.SetPeerAddr("a", standby.base); err != nil {
		fatalf("client repoint: %v", err)
	}
	fmt.Printf("cluster-smoke: standby promoted as node a (%d chips, %d records replayed)\n",
		promoted.Chips, promoted.Replayed)

	// The failed-over shard must take writes again. Generous deadline:
	// on a loaded box in-flight calls to the survivors can hold every
	// worker for seconds before one reaches an a-owned chip.
	waitProgress("shard a after promotion", 2*time.Minute, perOwner["a"])
	stop.Store(true)
	wg.Wait()

	// Audit 1: zero acked-op loss. Every created chip exists, and every
	// chip's replayed op count is at or above its acked mutation count
	// (creates + stresses; sensor reads would only add to it).
	audit := acks.snapshot()
	listed, err := cl.ListChips(ctx)
	if err != nil {
		fatalf("post-failover list: %v", err)
	}
	present := make(map[string]bool, len(listed))
	for _, ch := range listed {
		present[ch.ID] = true
	}
	for _, id := range ids {
		if !present[id] {
			fatalf("acked chip %s lost in failover (owner %s)", id, owners[id])
		}
	}
	type usage struct {
		Ops uint64 `json:"ops"`
	}
	opsByID := make(map[string]uint64, chips)
	for id, base := range map[string]string{"a": standby.base, "b": nodes["b"].base, "c": nodes["c"].base} {
		st, raw := get(base + "/metrics")
		if st != http.StatusOK {
			fatalf("metrics on %s: status %d", id, st)
		}
		var snap struct {
			Chips map[string]usage `json:"chips"`
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			fatalf("decode metrics on %s: %v", id, err)
		}
		for chip, u := range snap.Chips {
			if u.Ops > opsByID[chip] {
				opsByID[chip] = u.Ops
			}
		}
	}
	var audited int
	for id, acked := range audit {
		// Ops counts stress/rejuvenate/measure/odometer; the create is
		// audited by presence above.
		if opsByID[id] < acked {
			fatalf("chip %s (owner %s): %d ops replayed, but %d were acked",
				id, owners[id], opsByID[id], acked)
		}
		audited++
	}

	// Audit 2: /readyz converges to 200 on every node id, with the
	// promoted standby answering for "a".
	bases := map[string]string{"a": standby.base, "b": nodes["b"].base, "c": nodes["c"].base}
	for id, base := range bases {
		ok := false
		for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
			if st, _ := get(base + "/readyz"); st == http.StatusOK {
				ok = true
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if !ok {
			fatalf("node %s /readyz never converged to 200", id)
		}
	}
	if cs := clusterOf(nodes["b"].base); true {
		found := false
		for _, p := range cs.Peers {
			if p.ID == "a" && p.Addr == standby.base {
				found = true
			}
		}
		if !found {
			fatalf("node b's ring never learned a's new address: %+v", cs.Peers)
		}
	}

	fmt.Printf("cluster-smoke: PASS in %.1fs — %d chips, %d chips audited with zero acked-op loss, ready on all 3 nodes\n",
		time.Since(start).Seconds(), chips, audited)
}
