// Command obs-smoke is the observability smoke test CI runs after the
// bench smoke: it builds selfheal-serve, boots a durable fleet with
// JSON logs and the debug listener enabled, drives one batch through
// it, and then verifies the whole telemetry surface end to end — the
// JSON and Prometheus metric expositions, a retrievable trace for the
// batch with the journal commit visible, the pprof index, and a
// structured log line carrying a trace_id.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obs-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// freePort grabs an ephemeral localhost port. Closing the listener
// before the server binds it is a small race, acceptable in a smoke
// test that runs on an otherwise idle CI box.
func freePort() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("reserve port: %v", err)
	}
	defer l.Close()
	return l.Addr().String()
}

// lockedBuffer collects the server's stderr while the test reads it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// get fetches a URL and returns the body, failing the smoke on any
// transport error or unexpected status.
func get(url string, wantStatus int) []byte {
	resp, err := http.Get(url)
	if err != nil {
		fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		fatalf("GET %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

func post(url, body string, wantStatus int) []byte {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("POST %s: read body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		fatalf("POST %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, raw)
	}
	return raw
}

func main() {
	tmp, err := os.MkdirTemp("", "obs-smoke-")
	if err != nil {
		fatalf("tempdir: %v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "selfheal-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/selfheal-serve")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		fatalf("build selfheal-serve: %v", err)
	}

	addr, debugAddr := freePort(), freePort()
	logs := &lockedBuffer{}
	srv := exec.Command(bin,
		"-addr", addr,
		"-debug-addr", debugAddr,
		"-data", filepath.Join(tmp, "data"),
		"-log-format", "json",
		"-log-level", "debug",
		"-grace", "2s",
	)
	srv.Stderr = logs
	if err := srv.Start(); err != nil {
		fatalf("start server: %v", err)
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}
	defer stop()

	base := "http://" + addr
	debugBase := "http://" + debugAddr

	// ---- Liveness: wait for the server to come up. ----
	up := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				up = true
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		fatalf("server never became healthy; logs:\n%s", logs.String())
	}

	// ---- Drive one batch through a durable fleet. ----
	post(base+"/v1/chips", `{"id":"c0","seed":7,"kind":"bench"}`, http.StatusCreated)
	post(base+"/v1/chips", `{"id":"m0","seed":8,"kind":"monitored"}`, http.StatusCreated)
	var batch struct {
		Failed int `json:"failed"`
	}
	raw := post(base+"/v1/ops:batch", `{"ops":[
		{"op":"stress","id":"c0","temp_c":110,"vdd":1.3,"ac":true,"hours":24,"sample_hours":6},
		{"op":"measure","id":"c0"},
		{"op":"odometer","id":"m0"}
	]}`, http.StatusOK)
	if err := json.Unmarshal(raw, &batch); err != nil {
		fatalf("decode batch response %s: %v", raw, err)
	}
	if batch.Failed != 0 {
		fatalf("batch had %d failed items: %s", batch.Failed, raw)
	}

	// ---- Both metric expositions. ----
	var snap struct {
		LatencyByRoute map[string]json.RawMessage `json:"latency_by_route"`
	}
	if err := json.Unmarshal(get(base+"/metrics", http.StatusOK), &snap); err != nil {
		fatalf("decode JSON metrics: %v", err)
	}
	if _, ok := snap.LatencyByRoute["POST /v1/ops:batch"]; !ok {
		fatalf("JSON metrics missing latency_by_route for the batch route")
	}
	prom := string(get(base+"/metrics?format=prometheus", http.StatusOK))
	for _, want := range []string{
		`selfheal_request_duration_seconds_bucket{route="POST /v1/ops:batch",le="+Inf"}`,
		`selfheal_chip_degradation_pct{chip="c0"}`,
		`selfheal_chip_degradation_ppm{chip="m0"}`,
		"selfheal_journal_fsync_total",
		"go_goroutines",
	} {
		if !strings.Contains(prom, want) {
			fatalf("prometheus exposition missing %q; got:\n%s", want, prom)
		}
	}

	// ---- The batch trace, from both listeners. ----
	query := "?route=" + url.QueryEscape("POST /v1/ops:batch")
	var traces struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	traceID := ""
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline) && traceID == ""; {
		if err := json.Unmarshal(get(base+"/debug/traces"+query, http.StatusOK), &traces); err != nil {
			fatalf("decode traces: %v", err)
		}
		for _, tr := range traces.Traces {
			names := make(map[string]bool, len(tr.Spans))
			for _, sp := range tr.Spans {
				names[sp.Name] = true
			}
			if names["fleet.batch"] && names["chip.lock"] && names["journal.commit"] {
				traceID = tr.TraceID
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if traceID == "" {
		fatalf("no batch trace with fleet.batch+chip.lock+journal.commit spans")
	}
	if body := get(debugBase+"/debug/traces"+query, http.StatusOK); !strings.Contains(string(body), traceID) {
		fatalf("debug listener does not serve trace %s", traceID)
	}
	if body := get(debugBase+"/debug/pprof/", http.StatusOK); !strings.Contains(string(body), "goroutine") {
		fatalf("pprof index looks wrong: %s", body)
	}

	// ---- Structured logs: a JSON request line carrying the trace_id. ----
	stop() // flush on graceful shutdown
	logged := false
	for _, line := range strings.Split(logs.String(), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Msg     string `json:"msg"`
			Path    string `json:"path"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec.Msg == "request" && rec.Path == "/v1/ops:batch" && rec.TraceID == traceID {
			logged = true
		}
	}
	if !logged {
		fatalf("no structured request log line with trace_id %s; logs:\n%s", traceID, logs.String())
	}

	fmt.Printf("obs-smoke: PASS (trace %s spans both listeners, logs join by trace_id)\n", traceID)
}
