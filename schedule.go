package selfheal

import (
	"fmt"

	"selfheal/internal/sched"
	"selfheal/internal/units"
)

// Policy selects when a system sleeps (Section 2.2 of the paper).
// Construct with NoRecoveryPolicy, ProactivePolicy or ReactivePolicy.
type Policy struct {
	inner sched.Policy
}

// Name returns the policy's display name.
func (p Policy) Name() string { return p.inner.Name() }

// NoRecoveryPolicy never sleeps — today's practice, the aging baseline.
func NoRecoveryPolicy() Policy { return Policy{inner: sched.NoRecovery{}} }

// ProactivePolicy sleeps on a fixed circadian schedule: alpha hours of
// work per hour of sleep (the paper uses α = 4 with 6 h sleeps), under
// the given sleep condition.
func ProactivePolicy(alpha, sleepHours float64, cond SleepCondition) Policy {
	return Policy{inner: sched.Proactive{
		Alpha:    alpha,
		SleepLen: units.HoursToSeconds(sleepHours),
		Cond:     toSleepCond(cond),
	}}
}

// ReactivePolicy sleeps only once the monitored degradation reaches
// triggerPct, then sleeps until it relaxes below relaxPct.
func ReactivePolicy(triggerPct, relaxPct float64, cond SleepCondition) Policy {
	return Policy{inner: sched.Reactive{
		TriggerPct: triggerPct,
		RelaxPct:   relaxPct,
		Cond:       toSleepCond(cond),
	}}
}

func toSleepCond(c SleepCondition) sched.SleepCond {
	return sched.SleepCond{TempC: units.Celsius(c.TempC), Vdd: units.Volt(c.Vdd)}
}

// ScheduleOutcome summarizes a policy simulated over a service life.
type ScheduleOutcome struct {
	Policy string
	// ActiveFraction is the share of wall time delivering work.
	ActiveFraction float64
	// PeakPct, FinalPct and MeanPct are frequency-degradation
	// percentages: worst over the horizon, at the end, and
	// time-weighted over active slots.
	PeakPct, FinalPct, MeanPct float64
	// MarginProvisionPct is the share of the delay-margin budget a
	// designer must provision to cover the peak.
	MarginProvisionPct float64
	// Trace samples degradation (%) against hours.
	Trace []TracePoint
}

// CompareSchedules simulates the policies over horizonDays of hot
// operation on identical chips (same seed) and returns outcomes in
// input order.
func CompareSchedules(seed uint64, horizonDays float64, policies ...Policy) ([]ScheduleOutcome, error) {
	if err := checkFinite("schedule horizon (days)", horizonDays); err != nil {
		return nil, err
	}
	if horizonDays <= 0 {
		return nil, fmt.Errorf("selfheal: schedule horizon must be positive, got %v days", horizonDays)
	}
	cfg := sched.DefaultConfig()
	cfg.Seed = seed
	cfg.Horizon = units.Seconds(horizonDays) * units.Day
	inner := make([]sched.Policy, len(policies))
	for i, p := range policies {
		if p.inner == nil {
			return nil, fmt.Errorf("selfheal: policy %d is zero-valued; use a constructor", i)
		}
		inner[i] = p.inner
	}
	outs, err := sched.Compare(cfg, inner...)
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	result := make([]ScheduleOutcome, len(outs))
	for i, o := range outs {
		result[i] = ScheduleOutcome{
			Policy:             o.Policy,
			ActiveFraction:     o.ActiveFraction,
			PeakPct:            o.PeakPct,
			FinalPct:           o.FinalPct,
			MeanPct:            o.MeanPct,
			MarginProvisionPct: o.MarginProvisionPct,
			Trace:              tracePoints(o.Trace.Times(), o.Trace.Values()),
		}
	}
	return result, nil
}
