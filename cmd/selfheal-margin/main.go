// Command selfheal-margin is the sign-off calculator the paper's
// margin-relaxation argument implies: given a mission profile (hot
// operating conditions plus an optional circadian rejuvenation
// schedule), it reports the BTI delay margin a design must ship for a
// target lifetime, the lifetime a given margin buys, and the relaxation
// the rejuvenation schedule earns over an always-on baseline.
//
// Usage:
//
//	selfheal-margin [-years 10] [-alpha 4] [-sleephours 6]
//	                [-activetemp 85] [-sleeptemp 110] [-sleeprail -0.3]
//	                [-safety 1.2] [-margin 0] [-json]
//
// With -json the report is emitted as machine-readable JSON (the fleet
// aging service's shared response schema); an infinite lifetime is
// encoded as -1.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"selfheal/internal/margin"
	"selfheal/internal/serve"
	"selfheal/internal/units"
)

func main() {
	years := flag.Float64("years", 10, "target service life in years")
	alpha := flag.Float64("alpha", 4, "active:sleep ratio (0 disables rejuvenation)")
	sleepHours := flag.Float64("sleephours", 6, "sleep interval length in hours")
	activeTemp := flag.Float64("activetemp", 85, "operating temperature, °C")
	sleepTemp := flag.Float64("sleeptemp", 110, "rejuvenation temperature, °C")
	sleepRail := flag.Float64("sleeprail", -0.3, "rejuvenation rail, volts (≤0)")
	safety := flag.Float64("safety", 1.2, "engineering safety factor on the shipped margin")
	marginPct := flag.Float64("margin", 0, "if >0: also report the lifetime this margin (%) buys")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (the service's response schema)")
	flag.Parse()

	baseline := margin.Server24x7()
	baseline.ActiveTempC = units.Celsius(*activeTemp)

	mission := baseline
	if *alpha > 0 && *sleepHours > 0 {
		mission.ActiveHours = *alpha * *sleepHours
		mission.SleepHours = *sleepHours
		mission.SleepTempC = units.Celsius(*sleepTemp)
		mission.SleepVdd = units.Volt(*sleepRail)
	}

	calc := margin.NewCalculator()
	need, err := calc.RequiredMarginPct(mission, *years, *safety)
	if err != nil {
		fail(err)
	}

	report := serve.MarginResponse{
		ActiveHours:       mission.ActiveHours,
		ActiveTempC:       *activeTemp,
		Years:             *years,
		Safety:            *safety,
		RequiredMarginPct: need,
	}
	if mission.SleepHours > 0 {
		report.SleepHours = mission.SleepHours
		report.SleepTempC = *sleepTemp
		report.SleepVdd = *sleepRail
		report.Alpha = mission.Alpha()
		baseNeed, err := calc.RequiredMarginPct(baseline, *years, *safety)
		if err != nil {
			fail(err)
		}
		relax, err := calc.RelaxationPct(baseline, mission, *years)
		if err != nil {
			fail(err)
		}
		report.BaselineMarginPct = &baseNeed
		report.RelaxedPct = &relax
	}
	if *marginPct > 0 {
		life, err := calc.LifetimeYears(mission, *marginPct)
		if err != nil {
			fail(err)
		}
		if math.IsInf(life, 1) {
			life = -1
		}
		report.LifetimeYears = &life
	}

	if *jsonOut {
		if err := serve.WriteJSON(os.Stdout, report); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("mission: %g h active @ %g °C", mission.ActiveHours, *activeTemp)
	if mission.SleepHours > 0 {
		fmt.Printf(" + %g h sleep @ %g °C / %g V (α = %g)",
			mission.SleepHours, *sleepTemp, *sleepRail, mission.Alpha())
	} else {
		fmt.Printf(" (always on)")
	}
	fmt.Println()
	fmt.Printf("required BTI delay margin for %g years (safety %.2f): %.3f %%\n",
		*years, *safety, need)

	if report.BaselineMarginPct != nil {
		fmt.Printf("always-on baseline would need:               %.3f %%\n", *report.BaselineMarginPct)
		fmt.Printf("design margin relaxed by the schedule:       %.1f %%\n", *report.RelaxedPct)
	}
	if report.LifetimeYears != nil {
		if *report.LifetimeYears < 0 {
			fmt.Printf("a %.3f %% margin is never exhausted within 200 years\n", *marginPct)
		} else {
			fmt.Printf("a %.3f %% margin lasts %.1f years\n", *marginPct, *report.LifetimeYears)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "selfheal-margin:", err)
	os.Exit(1)
}
