// Command selfheal-fit extracts the paper's first-order model
// parameters (Table 3) from a measured delay series: the wearout fit
// ΔTd(t) = β·ln(1 + C·t) (Eq. 10), or the recovery fit of Eq. 11 given
// the stress history t1.
//
// The input is a two-column CSV with a header row: time in seconds,
// then ΔTd (wearout) or recovered delay RD (recovery), in nanoseconds.
// With no file argument it reads standard input.
//
// Usage:
//
//	selfheal-fit -kind wearout  data.csv
//	selfheal-fit -kind recovery -t1hours 24 data.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"selfheal/internal/fit"
	"selfheal/internal/series"
)

func main() {
	kind := flag.String("kind", "wearout", "model to fit: wearout or recovery")
	t1hours := flag.Float64("t1hours", 24, "stress history preceding a recovery series, hours")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		fail("at most one input file")
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	s, err := series.ReadCSV(in)
	if err != nil {
		fail(err)
	}

	switch *kind {
	case "wearout":
		p, err := fit.ExtractWearout(s)
		if err != nil {
			fail(err)
		}
		fmt.Printf("wearout fit of %q (%d samples): ΔTd(t) = β·ln(1 + C·t)\n", s.Name, s.Len())
		fmt.Printf("  β    = %.6f ns\n", p.BetaNS)
		fmt.Printf("  C    = %.6e 1/s\n", p.CPerS)
		fmt.Printf("  RMSE = %.4f ns\n", p.RMSE)
		fmt.Printf("  R²   = %.5f\n", p.R2)
	case "recovery":
		if *t1hours <= 0 {
			fail("-t1hours must be positive")
		}
		p, err := fit.ExtractRecovery(s, *t1hours*3600)
		if err != nil {
			fail(err)
		}
		fmt.Printf("recovery fit of %q (%d samples, t1 = %g h)\n", s.Name, s.Len(), *t1hours)
		fmt.Printf("  amp  = %.6f ns (ΔTd(t1)·φr)\n", p.AmpNS)
		fmt.Printf("  C    = %.6e 1/s\n", p.CPerS)
		fmt.Printf("  RMSE = %.4f ns\n", p.RMSE)
		fmt.Printf("  R²   = %.5f\n", p.R2)
	default:
		fail(fmt.Sprintf("unknown -kind %q", *kind))
	}
}

func fail(v any) {
	fmt.Fprintln(os.Stderr, "selfheal-fit:", v)
	os.Exit(1)
}
