// Command selfheal-bench regenerates the paper's evaluation: it runs
// the full Table 1 accelerated-test schedule on five simulated chips
// plus the long-horizon and multi-core simulations, then prints every
// table and figure of the DAC'14 paper as text artifacts.
//
// Usage:
//
//	selfheal-bench [-seed N] [-only "Table 4"] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"selfheal"
)

func main() {
	seed := flag.Uint64("seed", 2014, "experiment seed (process variation and noise)")
	only := flag.String("only", "", "print a single artifact by ID (e.g. \"Figure 8\")")
	list := flag.Bool("list", false, "list artifact IDs and exit")
	ext := flag.Bool("ext", false, "also run the extension studies (E1–E8)")
	csvDir := flag.String("csv", "", "also export every case's measurement series as CSV into this directory")
	flag.Parse()

	if *csvDir != "" {
		names, err := selfheal.ExportMeasurements(*seed, *csvDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d CSV files to %s\n", len(names), *csvDir)
	}

	report, err := selfheal.ReproducePaper(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-bench:", err)
		os.Exit(1)
	}
	if *ext {
		extras, err := selfheal.ReproduceExtensions(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-bench:", err)
			os.Exit(1)
		}
		report.Artifacts = append(report.Artifacts, extras.Artifacts...)
	}
	switch {
	case *list:
		for _, a := range report.Artifacts {
			fmt.Printf("%-10s %s\n", a.ID, a.Caption)
		}
	case *only != "":
		a, ok := report.Find(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "selfheal-bench: no artifact %q (use -list)\n", *only)
			os.Exit(1)
		}
		fmt.Print(a.Text)
	default:
		fmt.Print(report.Render())
	}
}
