// Command selfheal-serve runs the fleet aging service: an HTTP JSON
// API hosting a registry of named simulated chips (stress, rejuvenate,
// measure — per-chip locked, so different chips progress in parallel)
// and memoized prediction endpoints for the closed-form model, the
// schedule comparison and the multi-core exploration.
//
// Usage:
//
//	selfheal-serve [-addr :8040] [-cache 256] [-max-body 1048576]
//	               [-grace 10s] [-log-level info] [-log-format text]
//	               [-data DIR] [-repair] [-max-inflight 1024]
//	               [-op-timeout 30s] [-predict-timeout 2m]
//	               [-batch-workers N] [-faults spec]
//	               [-trace-buffer 256] [-telemetry-epochs 512]
//	               [-debug-addr addr]
//	               [-engine] [-epoch 1s] [-epoch-hours 0.5]
//	               [-engine-workers N] [-metrics-chips 50]
//	               [-guard] [-guard-spec spec] [-adversary spec]
//	               [-node-id id] [-peers id=url,...] [-vnodes N]
//	               [-repl-listen addr] [-repl-mode async|semisync]
//	               [-repl-ack-timeout 3s]
//	               [-repl-follow addr] [-advertise url]
//
// Endpoints:
//
//	POST   /v1/chips                   create a chip  {"id","seed","kind"}
//	POST   /v1/chips:batch             bulk create    {"chips":[...]}, per-item results
//	GET    /v1/chips                   list the fleet
//	DELETE /v1/chips/{id}              retire a die
//	POST   /v1/chips/{id}/stress       age it         {"temp_c","vdd","ac","hours","sample_hours"}
//	POST   /v1/chips/{id}/rejuvenate   heal it        {"temp_c","vdd","hours","sample_hours"}
//	GET    /v1/chips/{id}/measure      bench read-out (kind "bench")
//	GET    /v1/chips/{id}/odometer     on-die sensor  (kind "monitored")
//	POST   /v1/ops:batch               mixed op batch {"ops":[{"op","id",...}]}, per-item results
//	GET    /v1/engine                  aging-engine status and counters
//	POST   /v1/engine/chips:batch      bulk register   {"chips":[{"id","temp_c","vdd","duty","schedule"}]}
//	GET    /v1/engine/chips/{id}       snapshot view   (Vth shift, odometer, phase)
//	POST   /v1/engine/chips/{id}/condition   change operating point / park in sleep
//	POST   /v1/engine/chips/{id}/schedule    periodic stress/sleep alternation
//	DELETE /v1/engine/chips/{id}       deregister (engine-native chips only)
//	POST   /v1/engine/tick             advance the clock {"epochs":N} (manual clock,
//	                                   -epoch < 0, only; 409 when wall-driven)
//	GET    /v1/guard                   blue-team status: config, quarantine roster,
//	                                   counters, adversary view
//	GET    /v1/guard/alerts            recent guard alerts, newest first (?limit=)
//	POST   /v1/guard/config            retune the guard  {"spec":"sigma=4,streak=2,..."}
//	POST   /v1/predict/shift           closed-form ΔVth / recovered fraction
//	POST   /v1/predict/schedules       policy comparison over a horizon
//	POST   /v1/predict/multicore       8-core scheduling exploration
//	GET    /v1/telemetry               this node's per-epoch aging time-series
//	                                   (margin percentiles, aging rates, epoch
//	                                   lag, quarantine counts, repl lag,
//	                                   mutation throughput) plus SLO statuses
//	                                   and alerts; filter with ?series= &since=
//	                                   &step= &limit=
//	GET    /v1/fleet/telemetry         the same, federated: every ring peer
//	                                   scraped concurrently, per-node sections
//	                                   with staleness marked (a dead node is a
//	                                   hole in the view, not an error)
//	GET    /v1/cluster                 ring membership, placement counters,
//	                                   replication role and lag
//	POST   /v1/cluster/peers           repoint a node id after a failover
//	                                   {"id","addr"} (placement is by id,
//	                                   so no chips move)
//	POST   /v1/cluster/promote         promote a standby into the serving
//	                                   primary (409 on a serving node)
//	GET    /healthz                    liveness
//	GET    /readyz                     write-readiness (503 while degraded)
//	GET    /metrics                    counters, latency histograms, cache, per-chip
//	                                   usage and aging read-outs, journal
//	                                   fsync/batching, degraded mode, faults;
//	                                   ?format=prometheus for text exposition,
//	                                   ?federate=1 for a fleet-wide exposition
//	                                   with node labels
//	GET    /debug/traces               last completed /v1 request traces, one
//	                                   span per layer crossed; filter with
//	                                   ?route= &min_ms= &errors=only &limit=
//
// Every /v1 request is traced: the middleware opens a root span, and
// the fleet, store and journal layers add spans for batch scheduling,
// per-chip lock waits, shard lookups and the group-commit fsync (with
// the leader/follower role visible). The last -trace-buffer completed
// traces are retained in a ring served at /debug/traces. Logs carry
// the same trace_id, so a log line joins to its trace; -log-format
// json emits machine-parseable records.
//
// Traces propagate across the fleet: an inbound Traceparent header's
// trace id is adopted (and echoed back as X-Trace-ID), the client
// package injects it on every request including retries and batch
// fan-out, 307 wrong_node forwards replay it at the owner, and
// replication frames tag streamed commit batches with the originating
// id — so one logical mutation shows up under a single trace id in
// every involved node's /debug/traces, each half labelled with its
// node_id. X-Request-ID is honored the same way and stays stable
// across a client's retries.
//
// The engine additionally feeds a fixed-memory time-series database:
// every epoch records fleet margin percentiles, per-chip aging-rate
// distribution, epoch lag, guard quarantine counters, replication lag
// and mutation throughput into per-series rings holding the last
// -telemetry-epochs epochs, served by GET /v1/telemetry. A rolling
// burn-rate monitor evaluates three standing SLOs over those series —
// mutation availability, epoch-lag budget, and the paper's ≥90%
// margin-recovery headline — and pushes typed breach/recovery alerts
// into a fixed ring exposed with the statuses.
//
// -engine starts the discrete-event fleet aging engine: every fleet
// chip (and any chip bulk-registered through /v1/engine) advances one
// epoch of the trapping/detrapping aging model every -epoch of wall
// time, each epoch simulating -epoch-hours of operation. Readers get
// immutable per-epoch snapshots; with -data the epoch count is
// journaled, so a restart re-simulates the fleet to exactly where it
// stopped. A negative -epoch disables the wall ticker entirely: the
// clock is then manual and epochs advance only through POST
// /v1/engine/tick, which is how deterministic drivers (guard-smoke,
// red-team replays) pace the simulation.
//
// -guard (requires -engine) starts the blue team: a per-epoch
// aging-rate monitor over the engine's snapshots that quarantines
// outlier chips (mutations answer 503 with the "quarantined" code and
// a Retry-After while reads keep serving), remaps their logic onto
// spare fabric, and schedules accelerated rejuvenation — hot
// negative-rail sleep epochs — until the wearout excess is recovered,
// then releases them. -guard-spec tunes the thresholds, e.g.
// 'sigma=4,rate_floor=5e-4,streak=2,rejuv_epochs=4,recover_frac=0.9'.
// With -data, quarantine and release are journaled with the rest of
// the fleet history, so a hard kill mid-episode replays back into the
// exact same quarantine set and the restarted guard re-adopts and
// finishes healing the held chips.
//
// -adversary arms the red team against the guard: a seeded wearout
// attacker that picks victim chips and keeps forcing them to dc
// stress at a hot, overdriven corner while spamming schedule
// cancellations, e.g. 'seed=7,victims=2,start=10,deny_p=1,cancel_p=0.5'
// (faults.ParseAdversary grammar). Its moves are applied through the
// same engine API any workload would use — and refused the same way
// once the guard quarantines its victims.
//
// -node-id plus -peers run the service as one member of a multi-node
// fleet: a consistent-hash ring over the peer *ids* assigns every chip
// to exactly one node, misplaced chip requests are 307-forwarded to
// their owner (the client package follows transparently), and batch
// items for foreign chips are refused per item with the "wrong_node"
// code so routing clients can re-partition. All nodes and clients must
// agree on the id set and -vnodes.
//
// -repl-listen makes a durable node (-data required) a replication
// primary: every journal commit is streamed over TCP to connected
// followers, each session opening with a full snapshot. -repl-mode
// semisync withholds every mutation's response until a follower has
// durably acknowledged it — killing the primary then loses zero
// acknowledged operations — and refuses mutations entirely (degraded,
// 503) while no follower is connected. async acknowledges after local
// commit only.
//
// -repl-follow runs the process as a hot standby instead of a serving
// node: it tails the primary at that address into its own -data
// journal and serves only /healthz, /readyz (503 — never routable) and
// /v1/cluster until POST /v1/cluster/promote replays the replicated
// journal and atomically swaps in the full service, advertising
// -advertise for its -node-id. Placement hashes ids, not addresses, so
// the takeover moves zero chips; surviving peers learn the new address
// through POST /v1/cluster/peers.
//
// -debug-addr starts a second listener hosting /debug/pprof/ and
// /debug/traces. pprof exposes heap contents — bind it to localhost,
// never the public edge.
//
// With -data the fleet is durable: every operation — create, stress,
// rejuvenate, delete, and the sensor reads, which perturb the die —
// is appended to a checksummed, fsync'd journal in that directory
// before the response commits (concurrent operations share one fsync
// via group commit), and on startup the journal is replayed —
// simulations are deterministic per seed, so replay reconstructs every
// chip's exact aged state even after a hard kill.
//
// If the journal fails at runtime (disk full, I/O errors) the service
// enters degraded read-only mode instead of crashing: mutating routes
// answer 503 with the "degraded" error code and a Retry-After, reads
// keep serving from memory, /readyz reports 503, and a background
// probe restores write mode automatically when the disk recovers.
//
// If a journal file carries a corrupt record (failed checksum), the
// service refuses to start by default. -repair salvages instead: the
// damaged file is backed up beside itself (journal.log.corrupt.N), the
// file is truncated at the first bad record, and the dropped sequence
// numbers are logged.
//
// -faults enables the seeded chaos injector on the /v1 routes and the
// journal writer, e.g.:
//
//	selfheal-serve -data /var/lib/selfheal \
//	    -faults 'seed=7,latency_p=0.2,latency=50ms,error_p=0.05,panic_p=0.01,partial_p=0.05'
//
// The service sheds load with 429 + Retry-After when more than
// -max-inflight requests are executing, recovers handler panics into
// JSON 500s, bounds every route with a timeout, and shuts down
// gracefully on SIGINT/SIGTERM: in-flight requests get the grace
// period, then their contexts are cancelled and long simulations abort
// at the next slot boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/journal"
	"selfheal/internal/obs"
	"selfheal/internal/repl"
	"selfheal/internal/serve"
	"selfheal/internal/store"
)

// parsePeers parses the -peers grammar: comma-separated id=url pairs.
func parsePeers(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, nil
	}
	peers := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate -peers id %q", id)
		}
		peers[id] = url
	}
	return peers, nil
}

// standbyOptions carries the -repl-follow wiring into runStandby.
type standbyOptions struct {
	dataDir   string
	follow    string
	nodeID    string
	advertise string
	peers     map[string]string
	vnodes    int
	base      serve.Config
}

// runStandby runs the hot-standby role: tail the primary's journal
// into the local data directory and serve the minimal standby surface
// until a promotion (or a signal) ends the process's run. The standby
// owns its listener directly — serve.Server only exists after
// promotion, inside the Standby's atomic handler swap.
func runStandby(ctx context.Context, logger *slog.Logger, o standbyOptions) error {
	fj, err := journal.Open(o.dataDir, journal.Options{})
	if err != nil {
		return err
	}
	fol := repl.NewFollower(fj, repl.FollowerConfig{
		NodeID:      o.nodeID,
		PrimaryAddr: o.follow,
		Logger:      logger,
	})
	fol.Start()
	sb, err := serve.NewStandby(serve.StandbyConfig{
		NodeID:        o.nodeID,
		AdvertiseAddr: o.advertise,
		Peers:         o.peers,
		VNodes:        o.vnodes,
		DataDir:       o.dataDir,
		Follower:      fol,
		Base:          o.base,
	})
	if err != nil {
		fol.Close()
		return err
	}
	defer sb.Close()
	httpSrv := &http.Server{Addr: o.base.Addr, Handler: sb, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("standby tailing primary",
		"addr", o.base.Addr, "primary", o.follow,
		"node", o.nodeID, "advertise", o.advertise)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.base.ShutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	<-errc
	return nil
}

func main() {
	addr := flag.String("addr", ":8040", "listen address")
	cacheSize := flag.Int("cache", 256, "prediction memo-cache capacity (results)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	dataDir := flag.String("data", "", "journal directory for a durable fleet (empty: in-memory only)")
	repair := flag.Bool("repair", false, "salvage a corrupt journal: back it up, truncate at the first bad record, report dropped seqs")
	maxInflight := flag.Int("max-inflight", 1024, "concurrent /v1 requests before shedding with 429")
	opTimeout := flag.Duration("op-timeout", 30*time.Second, "timeout for registry and sensor routes")
	predictTimeout := flag.Duration("predict-timeout", 2*time.Minute, "timeout for /v1/predict routes")
	batchWorkers := flag.Int("batch-workers", 0, "worker pool size for the :batch routes (0: GOMAXPROCS)")
	faultSpec := flag.String("faults", "", "chaos injection spec: seed=N,latency_p=F,latency=D,error_p=F,panic_p=F,partial_p=F,disk=MODE[:N]")
	traceBuffer := flag.Int("trace-buffer", 256, "completed request traces retained for /debug/traces")
	telemetryEpochs := flag.Int("telemetry-epochs", 512, "epochs of per-series aging telemetry retained for /v1/telemetry")
	debugAddr := flag.String("debug-addr", "", "listen address for /debug/pprof/ and /debug/traces (empty: disabled; bind to localhost)")
	engineOn := flag.Bool("engine", false, "run the fleet aging engine (epoch-batched whole-fleet simulation)")
	epoch := flag.Duration("epoch", time.Second, "wall-clock interval between engine epochs (negative: manual ticks only)")
	epochHours := flag.Float64("epoch-hours", 0.5, "simulated hours each engine epoch advances")
	engineWorkers := flag.Int("engine-workers", 0, "engine tick worker pool size (0: GOMAXPROCS)")
	metricsChips := flag.Int("metrics-chips", 50, "per-chip series cap in the Prometheus exposition (0: unlimited)")
	guardOn := flag.Bool("guard", false, "run the blue-team guard: aging-rate monitoring, quarantine, remap, accelerated rejuvenation (requires -engine)")
	guardSpec := flag.String("guard-spec", "", "guard tuning spec: sigma=F,rate_floor=F,streak=N,rejuv_epochs=N,recover_frac=F,... (empty: defaults)")
	advSpec := flag.String("adversary", "", "red-team wearout attacker spec: seed=N,victims=N,start=N,deny_p=F,cancel_p=F,temp_c=F,vdd=F (empty: no adversary)")
	nodeID := flag.String("node-id", "", "this node's id in a multi-node fleet (requires -peers)")
	peersSpec := flag.String("peers", "", "ring membership as id=url,id=url including this node, e.g. 'a=http://h1:8040,b=http://h2:8040'")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per ring member (0: default; all nodes and clients must agree)")
	replListen := flag.String("repl-listen", "", "TCP address to stream this node's journal to followers (primary role; requires -data)")
	replMode := flag.String("repl-mode", "async", "replication ack contract: async or semisync (semisync: acked writes survive a primary kill)")
	replAckTimeout := flag.Duration("repl-ack-timeout", 3*time.Second, "semisync wait for a follower's durable ack before a mutation fails as indeterminate")
	replFollow := flag.String("repl-follow", "", "primary repl address to tail as a hot standby (requires -data, -node-id, -peers, -advertise)")
	advertise := flag.String("advertise", "", "this node's public base URL, advertised for its id when a standby promotes")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(2)
	}

	var injector *faults.Injector
	if *faultSpec != "" {
		cfg, err := faults.ParseConfig(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(2)
		}
		if injector, err = faults.New(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(2)
		}
		logger.Warn("chaos fault injection enabled", "spec", *faultSpec)
	}

	var adversary *faults.Adversary
	if *advSpec != "" {
		cfg, err := faults.ParseAdversary(*advSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(2)
		}
		if adversary, err = faults.NewAdversary(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(2)
		}
		if !*guardOn {
			fmt.Fprintln(os.Stderr, "selfheal-serve: -adversary requires -guard (the guard applies the red team's moves)")
			os.Exit(2)
		}
		logger.Warn("red-team wearout adversary armed", "spec", *advSpec)
	}

	peers, err := parsePeers(*peersSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(2)
	}
	var clusterCfg *serve.ClusterConfig
	if *nodeID != "" || len(peers) > 0 {
		if *nodeID == "" || len(peers) == 0 {
			fmt.Fprintln(os.Stderr, "selfheal-serve: cluster mode needs both -node-id and -peers")
			os.Exit(2)
		}
		clusterCfg = &serve.ClusterConfig{NodeID: *nodeID, Peers: peers, VNodes: *vnodes}
	}

	baseCfg := serve.Config{
		Addr:             *addr,
		CacheSize:        *cacheSize,
		MaxBodyBytes:     *maxBody,
		ShutdownGrace:    *grace,
		Logger:           logger,
		Faults:           injector,
		MaxInFlight:      *maxInflight,
		OpTimeout:        *opTimeout,
		PredictTimeout:   *predictTimeout,
		BatchWorkers:     *batchWorkers,
		TraceBuffer:      *traceBuffer,
		TelemetryEpochs:  *telemetryEpochs,
		EngineEnabled:    *engineOn,
		EngineEpoch:      *epoch,
		EngineEpochHours: *epochHours,
		EngineWorkers:    *engineWorkers,
		MetricsChipLimit: *metricsChips,
		GuardEnabled:     *guardOn,
		GuardSpec:        *guardSpec,
		Adversary:        adversary,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replFollow != "" {
		if *replListen != "" {
			fmt.Fprintln(os.Stderr, "selfheal-serve: -repl-follow and -repl-listen are mutually exclusive (a node is a primary or a standby)")
			os.Exit(2)
		}
		if *dataDir == "" || clusterCfg == nil || *advertise == "" {
			fmt.Fprintln(os.Stderr, "selfheal-serve: -repl-follow (standby role) requires -data, -node-id, -peers and -advertise")
			os.Exit(2)
		}
		if err := runStandby(ctx, logger, standbyOptions{
			dataDir:   *dataDir,
			follow:    *replFollow,
			nodeID:    *nodeID,
			advertise: *advertise,
			peers:     peers,
			vnodes:    *vnodes,
			base:      baseCfg,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(1)
		}
		return
	}

	var st fleet.Store
	if *replListen != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "selfheal-serve: -repl-listen (primary role) requires -data: replication streams the journal")
		os.Exit(2)
	}
	if *dataDir != "" {
		opts := store.JournalOptions{Repair: *repair}
		if injector != nil {
			opts.Hook = injector.JournalHook()
			opts.SyncHook = injector.JournalSyncHook()
		}
		jl, err := journal.Open(*dataDir, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(1)
		}
		for _, rep := range jl.Repairs() {
			logger.Warn("journal salvaged",
				"file", rep.File,
				"backup", rep.Backup,
				"truncated_at", rep.TruncatedAt,
				"line", rep.Line,
				"reason", rep.Reason,
				"dropped_records", rep.DroppedRecords,
				"dropped_seqs", fmt.Sprint(rep.DroppedSeqs),
			)
		}
		var log store.Log = jl
		if *replListen != "" {
			mode, err := repl.ParseMode(*replMode)
			if err != nil {
				fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
				os.Exit(2)
			}
			pcfg := repl.PrimaryConfig{
				NodeID:     *nodeID,
				Mode:       mode,
				AckTimeout: *replAckTimeout,
				Logger:     logger,
			}
			if injector != nil {
				pcfg.SendHook = injector.ReplSendHook()
			}
			prim := repl.NewPrimary(jl, pcfg)
			ln, err := net.Listen("tcp", *replListen)
			if err != nil {
				fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
				os.Exit(1)
			}
			go func() {
				if err := prim.Serve(ln); err != nil {
					logger.Error("replication listener failed", "err", err)
				}
			}()
			logger.Info("replication primary listening",
				"addr", ln.Addr().String(), "mode", mode)
			log = prim
			if clusterCfg != nil {
				clusterCfg.ReplStats = prim.ReplStats
			}
		}
		st = store.NewJournaled[*fleet.ChipEntry](store.NewMem[*fleet.ChipEntry](), log)
		defer st.Close()
	}

	baseCfg.Store = st
	baseCfg.Cluster = clusterCfg
	srv, err := serve.New(baseCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(1)
	}

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		defer dbg.Close()
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
		// The debug listener needs no drain grace: profiles cut off at
		// shutdown are re-runnable, unlike in-flight fleet mutations.
		go func() { <-ctx.Done(); dbg.Close() }()
	}

	if err := srv.Run(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(1)
	}
}
