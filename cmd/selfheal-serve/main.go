// Command selfheal-serve runs the fleet aging service: an HTTP JSON
// API hosting a registry of named simulated chips (stress, rejuvenate,
// measure — per-chip locked, so different chips progress in parallel)
// and memoized prediction endpoints for the closed-form model, the
// schedule comparison and the multi-core exploration.
//
// Usage:
//
//	selfheal-serve [-addr :8040] [-cache 256] [-max-body 1048576]
//	               [-grace 10s] [-log-level info] [-log-format text]
//	               [-data DIR] [-repair] [-max-inflight 1024]
//	               [-op-timeout 30s] [-predict-timeout 2m]
//	               [-batch-workers N] [-faults spec]
//	               [-trace-buffer 256] [-debug-addr addr]
//	               [-engine] [-epoch 1s] [-epoch-hours 0.5]
//	               [-engine-workers N] [-metrics-chips 50]
//	               [-guard] [-guard-spec spec] [-adversary spec]
//
// Endpoints:
//
//	POST   /v1/chips                   create a chip  {"id","seed","kind"}
//	POST   /v1/chips:batch             bulk create    {"chips":[...]}, per-item results
//	GET    /v1/chips                   list the fleet
//	DELETE /v1/chips/{id}              retire a die
//	POST   /v1/chips/{id}/stress       age it         {"temp_c","vdd","ac","hours","sample_hours"}
//	POST   /v1/chips/{id}/rejuvenate   heal it        {"temp_c","vdd","hours","sample_hours"}
//	GET    /v1/chips/{id}/measure      bench read-out (kind "bench")
//	GET    /v1/chips/{id}/odometer     on-die sensor  (kind "monitored")
//	POST   /v1/ops:batch               mixed op batch {"ops":[{"op","id",...}]}, per-item results
//	GET    /v1/engine                  aging-engine status and counters
//	POST   /v1/engine/chips:batch      bulk register   {"chips":[{"id","temp_c","vdd","duty","schedule"}]}
//	GET    /v1/engine/chips/{id}       snapshot view   (Vth shift, odometer, phase)
//	POST   /v1/engine/chips/{id}/condition   change operating point / park in sleep
//	POST   /v1/engine/chips/{id}/schedule    periodic stress/sleep alternation
//	DELETE /v1/engine/chips/{id}       deregister (engine-native chips only)
//	POST   /v1/engine/tick             advance the clock {"epochs":N} (manual clock,
//	                                   -epoch < 0, only; 409 when wall-driven)
//	GET    /v1/guard                   blue-team status: config, quarantine roster,
//	                                   counters, adversary view
//	GET    /v1/guard/alerts            recent guard alerts, newest first (?limit=)
//	POST   /v1/guard/config            retune the guard  {"spec":"sigma=4,streak=2,..."}
//	POST   /v1/predict/shift           closed-form ΔVth / recovered fraction
//	POST   /v1/predict/schedules       policy comparison over a horizon
//	POST   /v1/predict/multicore       8-core scheduling exploration
//	GET    /healthz                    liveness
//	GET    /readyz                     write-readiness (503 while degraded)
//	GET    /metrics                    counters, latency histograms, cache, per-chip
//	                                   usage and aging read-outs, journal
//	                                   fsync/batching, degraded mode, faults;
//	                                   ?format=prometheus for text exposition
//	GET    /debug/traces               last completed /v1 request traces, one
//	                                   span per layer crossed; filter with
//	                                   ?route= &min_ms= &errors=only &limit=
//
// Every /v1 request is traced: the middleware opens a root span, and
// the fleet, store and journal layers add spans for batch scheduling,
// per-chip lock waits, shard lookups and the group-commit fsync (with
// the leader/follower role visible). The last -trace-buffer completed
// traces are retained in a ring served at /debug/traces. Logs carry
// the same trace_id, so a log line joins to its trace; -log-format
// json emits machine-parseable records.
//
// -engine starts the discrete-event fleet aging engine: every fleet
// chip (and any chip bulk-registered through /v1/engine) advances one
// epoch of the trapping/detrapping aging model every -epoch of wall
// time, each epoch simulating -epoch-hours of operation. Readers get
// immutable per-epoch snapshots; with -data the epoch count is
// journaled, so a restart re-simulates the fleet to exactly where it
// stopped. A negative -epoch disables the wall ticker entirely: the
// clock is then manual and epochs advance only through POST
// /v1/engine/tick, which is how deterministic drivers (guard-smoke,
// red-team replays) pace the simulation.
//
// -guard (requires -engine) starts the blue team: a per-epoch
// aging-rate monitor over the engine's snapshots that quarantines
// outlier chips (mutations answer 503 with the "quarantined" code and
// a Retry-After while reads keep serving), remaps their logic onto
// spare fabric, and schedules accelerated rejuvenation — hot
// negative-rail sleep epochs — until the wearout excess is recovered,
// then releases them. -guard-spec tunes the thresholds, e.g.
// 'sigma=4,rate_floor=5e-4,streak=2,rejuv_epochs=4,recover_frac=0.9'.
// With -data, quarantine and release are journaled with the rest of
// the fleet history, so a hard kill mid-episode replays back into the
// exact same quarantine set and the restarted guard re-adopts and
// finishes healing the held chips.
//
// -adversary arms the red team against the guard: a seeded wearout
// attacker that picks victim chips and keeps forcing them to dc
// stress at a hot, overdriven corner while spamming schedule
// cancellations, e.g. 'seed=7,victims=2,start=10,deny_p=1,cancel_p=0.5'
// (faults.ParseAdversary grammar). Its moves are applied through the
// same engine API any workload would use — and refused the same way
// once the guard quarantines its victims.
//
// -debug-addr starts a second listener hosting /debug/pprof/ and
// /debug/traces. pprof exposes heap contents — bind it to localhost,
// never the public edge.
//
// With -data the fleet is durable: every operation — create, stress,
// rejuvenate, delete, and the sensor reads, which perturb the die —
// is appended to a checksummed, fsync'd journal in that directory
// before the response commits (concurrent operations share one fsync
// via group commit), and on startup the journal is replayed —
// simulations are deterministic per seed, so replay reconstructs every
// chip's exact aged state even after a hard kill.
//
// If the journal fails at runtime (disk full, I/O errors) the service
// enters degraded read-only mode instead of crashing: mutating routes
// answer 503 with the "degraded" error code and a Retry-After, reads
// keep serving from memory, /readyz reports 503, and a background
// probe restores write mode automatically when the disk recovers.
//
// If a journal file carries a corrupt record (failed checksum), the
// service refuses to start by default. -repair salvages instead: the
// damaged file is backed up beside itself (journal.log.corrupt.N), the
// file is truncated at the first bad record, and the dropped sequence
// numbers are logged.
//
// -faults enables the seeded chaos injector on the /v1 routes and the
// journal writer, e.g.:
//
//	selfheal-serve -data /var/lib/selfheal \
//	    -faults 'seed=7,latency_p=0.2,latency=50ms,error_p=0.05,panic_p=0.01,partial_p=0.05'
//
// The service sheds load with 429 + Retry-After when more than
// -max-inflight requests are executing, recovers handler panics into
// JSON 500s, bounds every route with a timeout, and shuts down
// gracefully on SIGINT/SIGTERM: in-flight requests get the grace
// period, then their contexts are cancelled and long simulations abort
// at the next slot boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selfheal/internal/faults"
	"selfheal/internal/fleet"
	"selfheal/internal/obs"
	"selfheal/internal/serve"
	"selfheal/internal/store"
)

func main() {
	addr := flag.String("addr", ":8040", "listen address")
	cacheSize := flag.Int("cache", 256, "prediction memo-cache capacity (results)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	dataDir := flag.String("data", "", "journal directory for a durable fleet (empty: in-memory only)")
	repair := flag.Bool("repair", false, "salvage a corrupt journal: back it up, truncate at the first bad record, report dropped seqs")
	maxInflight := flag.Int("max-inflight", 1024, "concurrent /v1 requests before shedding with 429")
	opTimeout := flag.Duration("op-timeout", 30*time.Second, "timeout for registry and sensor routes")
	predictTimeout := flag.Duration("predict-timeout", 2*time.Minute, "timeout for /v1/predict routes")
	batchWorkers := flag.Int("batch-workers", 0, "worker pool size for the :batch routes (0: GOMAXPROCS)")
	faultSpec := flag.String("faults", "", "chaos injection spec: seed=N,latency_p=F,latency=D,error_p=F,panic_p=F,partial_p=F,disk=MODE[:N]")
	traceBuffer := flag.Int("trace-buffer", 256, "completed request traces retained for /debug/traces")
	debugAddr := flag.String("debug-addr", "", "listen address for /debug/pprof/ and /debug/traces (empty: disabled; bind to localhost)")
	engineOn := flag.Bool("engine", false, "run the fleet aging engine (epoch-batched whole-fleet simulation)")
	epoch := flag.Duration("epoch", time.Second, "wall-clock interval between engine epochs (negative: manual ticks only)")
	epochHours := flag.Float64("epoch-hours", 0.5, "simulated hours each engine epoch advances")
	engineWorkers := flag.Int("engine-workers", 0, "engine tick worker pool size (0: GOMAXPROCS)")
	metricsChips := flag.Int("metrics-chips", 50, "per-chip series cap in the Prometheus exposition (0: unlimited)")
	guardOn := flag.Bool("guard", false, "run the blue-team guard: aging-rate monitoring, quarantine, remap, accelerated rejuvenation (requires -engine)")
	guardSpec := flag.String("guard-spec", "", "guard tuning spec: sigma=F,rate_floor=F,streak=N,rejuv_epochs=N,recover_frac=F,... (empty: defaults)")
	advSpec := flag.String("adversary", "", "red-team wearout attacker spec: seed=N,victims=N,start=N,deny_p=F,cancel_p=F,temp_c=F,vdd=F (empty: no adversary)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(2)
	}

	var injector *faults.Injector
	if *faultSpec != "" {
		cfg, err := faults.ParseConfig(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(2)
		}
		if injector, err = faults.New(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(2)
		}
		logger.Warn("chaos fault injection enabled", "spec", *faultSpec)
	}

	var adversary *faults.Adversary
	if *advSpec != "" {
		cfg, err := faults.ParseAdversary(*advSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(2)
		}
		if adversary, err = faults.NewAdversary(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(2)
		}
		if !*guardOn {
			fmt.Fprintln(os.Stderr, "selfheal-serve: -adversary requires -guard (the guard applies the red team's moves)")
			os.Exit(2)
		}
		logger.Warn("red-team wearout adversary armed", "spec", *advSpec)
	}

	var st fleet.Store
	if *dataDir != "" {
		opts := store.JournalOptions{Repair: *repair}
		if injector != nil {
			opts.Hook = injector.JournalHook()
			opts.SyncHook = injector.JournalSyncHook()
		}
		durable, repairs, err := store.Open[*fleet.ChipEntry](*dataDir, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
			os.Exit(1)
		}
		st = durable
		defer st.Close()
		for _, rep := range repairs {
			logger.Warn("journal salvaged",
				"file", rep.File,
				"backup", rep.Backup,
				"truncated_at", rep.TruncatedAt,
				"line", rep.Line,
				"reason", rep.Reason,
				"dropped_records", rep.DroppedRecords,
				"dropped_seqs", fmt.Sprint(rep.DroppedSeqs),
			)
		}
	}

	srv, err := serve.New(serve.Config{
		Addr:             *addr,
		CacheSize:        *cacheSize,
		MaxBodyBytes:     *maxBody,
		ShutdownGrace:    *grace,
		Logger:           logger,
		Store:            st,
		Faults:           injector,
		MaxInFlight:      *maxInflight,
		OpTimeout:        *opTimeout,
		PredictTimeout:   *predictTimeout,
		BatchWorkers:     *batchWorkers,
		TraceBuffer:      *traceBuffer,
		EngineEnabled:    *engineOn,
		EngineEpoch:      *epoch,
		EngineEpochHours: *epochHours,
		EngineWorkers:    *engineWorkers,
		MetricsChipLimit: *metricsChips,
		GuardEnabled:     *guardOn,
		GuardSpec:        *guardSpec,
		Adversary:        adversary,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		defer dbg.Close()
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
		// The debug listener needs no drain grace: profiles cut off at
		// shutdown are re-runnable, unlike in-flight fleet mutations.
		go func() { <-ctx.Done(); dbg.Close() }()
	}

	if err := srv.Run(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(1)
	}
}
