// Command selfheal-serve runs the fleet aging service: an HTTP JSON
// API hosting a registry of named simulated chips (stress, rejuvenate,
// measure — per-chip locked, so different chips progress in parallel)
// and memoized prediction endpoints for the closed-form model, the
// schedule comparison and the multi-core exploration.
//
// Usage:
//
//	selfheal-serve [-addr :8040] [-cache 256] [-max-body 1048576]
//	               [-grace 10s] [-log-level info]
//
// Endpoints:
//
//	POST /v1/chips                   create a chip  {"id","seed","kind"}
//	GET  /v1/chips                   list the fleet
//	POST /v1/chips/{id}/stress       age it         {"temp_c","vdd","ac","hours","sample_hours"}
//	POST /v1/chips/{id}/rejuvenate   heal it        {"temp_c","vdd","hours","sample_hours"}
//	GET  /v1/chips/{id}/measure      bench read-out (kind "bench")
//	GET  /v1/chips/{id}/odometer     on-die sensor  (kind "monitored")
//	POST /v1/predict/shift           closed-form ΔVth / recovered fraction
//	POST /v1/predict/schedules       policy comparison over a horizon
//	POST /v1/predict/multicore       8-core scheduling exploration
//	GET  /healthz                    liveness
//	GET  /metrics                    counters, latency histogram, cache, per-chip usage
//
// The service shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get the grace period, then their contexts are cancelled and
// long simulations abort at the next slot boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selfheal/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8040", "listen address")
	cacheSize := flag.Int("cache", 256, "prediction memo-cache capacity (results)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv, err := serve.New(serve.Config{
		Addr:          *addr,
		CacheSize:     *cacheSize,
		MaxBodyBytes:  *maxBody,
		ShutdownGrace: *grace,
		Logger:        logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "selfheal-serve:", err)
		os.Exit(1)
	}
}
