// Command selfheal-mc runs the Section 6.2 multi-core exploration: an
// eight-core system (2×4 floorplan) delivering a fixed parallelism
// under one of three schedulers, reporting per-core aging and the
// margin the circadian self-healing policy buys.
//
// Usage:
//
//	selfheal-mc [-scheduler circadian|round-robin|static] [-demand 6] [-days 30] [-compare] [-json]
//
// With -json the outcomes are emitted as machine-readable JSON using
// the same schema the fleet aging service serves from
// POST /v1/predict/multicore.
package main

import (
	"flag"
	"fmt"
	"os"

	"selfheal"
	"selfheal/internal/serve"
)

func main() {
	scheduler := flag.String("scheduler", "circadian", "scheduler: static, round-robin or circadian")
	demand := flag.Int("demand", 6, "cores of throughput demanded every slot")
	days := flag.Float64("days", 30, "simulated span in days")
	compare := flag.Bool("compare", false, "run all three schedulers and compare")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (the service's response schema)")
	flag.Parse()

	names := []selfheal.MulticoreScheduler{selfheal.MulticoreScheduler(*scheduler)}
	if *compare {
		names = []selfheal.MulticoreScheduler{
			selfheal.StaticScheduler, selfheal.RoundRobinScheduler, selfheal.CircadianScheduler,
		}
	}
	outs := make([]selfheal.MulticoreOutcome, len(names))
	for i, name := range names {
		out, err := selfheal.RunMulticore(name, *demand, *days)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-mc:", err)
			os.Exit(1)
		}
		outs[i] = out
	}

	if *jsonOut {
		bodies := make([]serve.MulticoreResponse, len(outs))
		for i, out := range outs {
			bodies[i] = serve.NewMulticoreResponse(out)
		}
		var v any = bodies
		if !*compare {
			v = bodies[0]
		}
		if err := serve.WriteJSON(os.Stdout, v); err != nil {
			fmt.Fprintln(os.Stderr, "selfheal-mc:", err)
			os.Exit(1)
		}
		return
	}

	var staticWorst float64
	for i, out := range outs {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("scheduler %s — %d of 8 cores for %g days\n", out.Scheduler, *demand, *days)
		fmt.Printf("  worst core degradation: %.4f %%\n", out.WorstPct)
		fmt.Printf("  mean degradation:       %.4f %%\n", out.MeanPct)
		fmt.Printf("  worst-best spread:      %.4f %%\n", out.SpreadPct)
		fmt.Printf("  heal core-slots:        %d (compute slots: %d)\n", out.HealSlots, out.CoreSlots)
		if i == 0 {
			staticWorst = out.WorstPct
		} else if staticWorst > 0 {
			fmt.Printf("  margin relaxed vs %s: %.1f %%\n", names[0], (1-out.WorstPct/staticWorst)*100)
		}
		fmt.Println("  floorplan (degradation % / °C):")
		for row := 0; row < 2; row++ {
			fmt.Print("   ")
			for col := 0; col < 4; col++ {
				i := row*4 + col
				fmt.Printf(" [core%d %.4f%% %.0f°C]", i, out.PerCorePct[i], out.TemperatureC[i])
			}
			fmt.Println()
		}
	}
}
