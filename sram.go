package selfheal

import (
	"fmt"

	"selfheal/internal/sram"
	"selfheal/internal/units"
)

// SRAMPolicy names a cache-SRAM maintenance strategy (the ref-[14]
// application).
type SRAMPolicy string

// The available SRAM maintenance policies.
const (
	// SRAMNone lets biased data sit and skew the cells.
	SRAMNone SRAMPolicy = "none"
	// SRAMBitFlip periodically inverts stored contents, balancing
	// which pull-up ages (ref [14]'s symmetrization) but healing
	// nothing.
	SRAMBitFlip SRAMPolicy = "bit-flip"
	// SRAMProactiveRecovery rotates one way at a time onto a gated
	// island under the accelerated condition — this paper's healing.
	SRAMProactiveRecovery SRAMPolicy = "proactive-recovery"
	// SRAMFlipAndRecover combines both mechanisms.
	SRAMFlipAndRecover SRAMPolicy = "flip+recover"
)

// SRAMOutcome summarizes a simulated cache-array service interval.
type SRAMOutcome struct {
	Policy string
	Days   float64
	// MinSNMMV and MeanSNMMV are the worst-cell and array-average
	// static noise margins in millivolts.
	MinSNMMV, MeanSNMMV float64
	// MarginConsumedPct is the share of the SNM guard band the worst
	// cell has eaten.
	MarginConsumedPct float64
	// FailingCells counts cells below the functional SNM floor.
	FailingCells int
}

// RunCacheSRAM simulates the default 8-way cache data array holding
// zero-skewed contents at 85 °C for the given number of days under the
// named maintenance policy.
func RunCacheSRAM(policy SRAMPolicy, days float64, seed uint64) (SRAMOutcome, error) {
	var pol sram.Policy
	switch policy {
	case SRAMNone:
		pol = sram.None
	case SRAMBitFlip:
		pol = sram.BitFlip
	case SRAMProactiveRecovery:
		pol = sram.ProactiveRecovery
	case SRAMFlipAndRecover:
		pol = sram.FlipAndRecover
	default:
		return SRAMOutcome{}, fmt.Errorf("selfheal: unknown SRAM policy %q", policy)
	}
	out, err := sram.Simulate(sram.DefaultArrayParams(), pol, days, 6*units.Hour, seed)
	if err != nil {
		return SRAMOutcome{}, fmt.Errorf("selfheal: %w", err)
	}
	return SRAMOutcome{
		Policy:            out.Policy,
		Days:              out.Days,
		MinSNMMV:          out.MinSNMMV,
		MeanSNMMV:         out.MeanSNMMV,
		MarginConsumedPct: out.MarginConsumedPct,
		FailingCells:      out.FailingCells,
	}, nil
}
