// workload runs the paper's experiment on real logic: an 8-bit
// ripple-carry adder technology-mapped onto the simulated fabric,
// computing actual sums through the LUT cells while its transistors
// age. The input statistics decide which devices wear out; a static
// idle workload (the DC-stress worst case) slows the critical path
// more than busy random operands, and six hours of accelerated sleep
// heal most of either.
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func main() {
	adder, err := selfheal.NewAdderLogic(8, 7)
	if err != nil {
		log.Fatal(err)
	}
	check := func() {
		// The fabric still computes correctly no matter how aged.
		for _, c := range [][2]uint64{{200, 55}, {127, 128}, {255, 255}} {
			sum, cout, err := adder.Add(c[0], c[1], false)
			if err != nil {
				log.Fatal(err)
			}
			want := c[0] + c[1]
			if sum != want&0xff || cout != (want > 255) {
				log.Fatalf("adder broke: %d+%d = %d (cout %v)", c[0], c[1], sum, cout)
			}
		}
	}
	cp := func(label string) float64 {
		d, err := adder.CriticalPathNS()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s critical path %7.3f ns  (+%.2f %%)\n",
			label, d, (d-adder.FreshCriticalPathNS())/adder.FreshCriticalPathNS()*100)
		return d
	}

	check()
	cp("fresh")

	if err := adder.StressWithWorkload(selfheal.AcceleratedStress(), 24, 0); err != nil {
		log.Fatal(err)
	}
	check()
	aged := cp("24 h idle workload (worst case)")

	if err := adder.Rejuvenate(selfheal.AcceleratedSleep(), 6); err != nil {
		log.Fatal(err)
	}
	check()
	healed := cp("after 6 h accelerated sleep")

	fresh := adder.FreshCriticalPathNS()
	fmt.Printf("\nmargin relaxed on real logic: %.1f %%\n", (aged-healed)/(aged-fresh)*100)
	fmt.Println("(and every addition stayed correct throughout — aging slows, it does not corrupt)")
}
