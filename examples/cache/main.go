// cache applies the paper's self-healing to the system its ref [14]
// targets: cache SRAM. Data in real caches is heavily zero-skewed, so
// whichever 6T pull-up faces the stored zero ages (NBTI) and the cell's
// static noise margin erodes asymmetrically. Four maintenance policies
// compete over 90 days at identical delivered capacity.
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func main() {
	const days = 90
	fmt.Printf("8-way cache data array, zero-skewed contents, 85 °C, %d days\n\n", days)
	fmt.Printf("%-20s %12s %13s %16s\n", "policy", "min SNM (mV)", "mean SNM (mV)", "margin used (%)")
	for _, policy := range []selfheal.SRAMPolicy{
		selfheal.SRAMNone,
		selfheal.SRAMBitFlip,
		selfheal.SRAMProactiveRecovery,
		selfheal.SRAMFlipAndRecover,
	} {
		out, err := selfheal.RunCacheSRAM(policy, days, 2014)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %12.1f %13.1f %16.1f\n",
			out.Policy, out.MinSNMMV, out.MeanSNMMV, out.MarginConsumedPct)
	}
	fmt.Println("\nreading: bit-flip balances *which* pull-up ages (best worst case at day")
	fmt.Println("granularity); island rotation heals both (this paper); combining them gives")
	fmt.Println("the best average margin — the two mechanisms attack different SNM-loss terms.")
}
