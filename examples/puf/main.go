// puf demonstrates aging of a security primitive (the paper's ref
// [17]): a 16-bit ring-oscillator PUF whose response bits flip as
// asymmetric usage ages the oscillator pairs differentially — and how
// accelerated rejuvenation shrinks the differential and restores the
// enrolled response.
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func render(bits []bool) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		out[i] = '0'
		if b {
			out[i] = '1'
		}
	}
	return string(out)
}

func main() {
	chip, err := selfheal.NewPUFChip("puf-demo", 17)
	if err != nil {
		log.Fatal(err)
	}
	report := func(label string) {
		resp, err := chip.Read()
		if err != nil {
			log.Fatal(err)
		}
		flips, err := chip.FlippedBits()
		if err != nil {
			log.Fatal(err)
		}
		rel, err := chip.Reliability(25)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s response %s   drifted bits %2d/16   reliability %.1f %%\n",
			label, render(resp), flips, rel*100)
	}

	report("fresh (enrolled)")
	if err := chip.Stress(selfheal.AcceleratedStress(), 48); err != nil {
		log.Fatal(err)
	}
	report("after 48 h asymmetric use")
	if err := chip.Rejuvenate(selfheal.AcceleratedSleep(), 12); err != nil {
		log.Fatal(err)
	}
	report("after 12 h rejuvenation")

	fmt.Println("\nthe PUF key drifts under differential BTI and mostly returns after healing —")
	fmt.Println("rejuvenation as maintenance for hardware security primitives.")
}
