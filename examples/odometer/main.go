// odometer demonstrates the on-die aging monitor the paper's Section 1
// cites (the Silicon Odometer, ref [7]): a stressed ring oscillator and
// a power-islanded reference read out differentially, resolving BTI
// degradation at the ppm level. The sensor watches a full
// stress/rejuvenate/re-stress cycle — the measurement infrastructure a
// reactive rejuvenation policy needs.
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func main() {
	chip, err := selfheal.NewMonitoredChip("odo-demo", 21)
	if err != nil {
		log.Fatal(err)
	}
	read := func(label string) {
		r, err := chip.Read()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9.0f ppm   (beat %8.0f Hz)\n", label, r.DegradationPPM, r.BeatHz)
	}

	read("fresh")
	for h := 6; h <= 24; h += 6 {
		if err := chip.Stress(selfheal.AcceleratedStress(), 6); err != nil {
			log.Fatal(err)
		}
		read(fmt.Sprintf("after %2d h stress", h))
	}
	for h := 2; h <= 6; h += 2 {
		if err := chip.Rejuvenate(selfheal.AcceleratedSleep(), 2); err != nil {
			log.Fatal(err)
		}
		read(fmt.Sprintf("after %2d h sleep", h))
	}
	if err := chip.Stress(selfheal.AcceleratedStress(), 1); err != nil {
		log.Fatal(err)
	}
	read("after 1 h re-stress")

	fmt.Println("\nthe differential read-out resolves single-hour aging steps (~ppm) that a")
	fmt.Println("raw counter (±0.1 % ≈ 1000 ppm) would bury in quantization noise.")
}
