// multicore demonstrates the paper's Section 6.2 application: an
// eight-core processor where sleeping cores are rejuvenated by the
// negative rail while their busy neighbours act as on-chip heaters.
// Three schedulers deliver identical throughput; the circadian one
// keeps the worst core freshest.
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func main() {
	const (
		demand = 6
		days   = 30
	)
	fmt.Printf("8-core system, %d cores demanded, %d days, identical throughput per scheduler\n\n", demand, days)
	schedulers := []selfheal.MulticoreScheduler{
		selfheal.StaticScheduler,
		selfheal.RoundRobinScheduler,
		selfheal.CircadianScheduler,
	}
	var baseline float64
	for i, name := range schedulers {
		out, err := selfheal.RunMulticore(name, demand, days)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s worst %.4f %%  mean %.4f %%  spread %.4f %%  heal-slots %d\n",
			out.Scheduler, out.WorstPct, out.MeanPct, out.SpreadPct, out.HealSlots)
		if i == 0 {
			baseline = out.WorstPct
		} else {
			fmt.Printf("%-12s margin relaxed vs static: %.1f %%\n", "",
				(1-out.WorstPct/baseline)*100)
		}
		fmt.Println("             floorplan (deg % @ °C):")
		for row := 0; row < 2; row++ {
			fmt.Print("            ")
			for col := 0; col < 4; col++ {
				c := row*4 + col
				fmt.Printf(" [%.4f%% @%3.0f°C]", out.PerCorePct[c], out.TemperatureC[c])
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("reading: circadian rotates the most-aged cores into negative-rail sleep;")
	fmt.Println("their active neighbours heat them (Fig. 10), accelerating BTI recovery for free.")
}
