// Quickstart: fabricate a simulated 40 nm FPGA, wear it out for a day
// under accelerated stress, then rejuvenate it for six hours under the
// paper's combined condition (110 °C, −0.3 V) and watch most of the
// degradation disappear.
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func main() {
	chip, err := selfheal.NewChip("quickstart", 42)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := chip.Measure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh:     %7.3f ns  (%.3f MHz, counter %d)\n",
		fresh.DelayNS, fresh.FrequencyHz/1e6, fresh.Counts)

	if _, err := chip.Stress(selfheal.AcceleratedStress(), 24, 0); err != nil {
		log.Fatal(err)
	}
	stressed, err := chip.Measure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stressed:  %7.3f ns  (+%.2f %% after 24 h at 110 °C)\n",
		stressed.DelayNS, stressed.DegradationPct)

	if _, err := chip.Rejuvenate(selfheal.AcceleratedSleep(), 6, 0); err != nil {
		log.Fatal(err)
	}
	healed, err := chip.Measure()
	if err != nil {
		log.Fatal(err)
	}
	relaxed, err := selfheal.MarginRelaxedPct(chip.FreshDelayNS(), stressed.DelayNS, healed.DelayNS)
	if err != nil {
		log.Fatal(err)
	}
	remaining, err := chip.RemainingMarginPct(healed.DelayNS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healed:    %7.3f ns  (6 h sleep at 110 °C / −0.3 V)\n", healed.DelayNS)
	fmt.Printf("\nmargin relaxed: %.1f %%   remaining design margin: %.1f %%\n", relaxed, remaining)
	ok, err := chip.WithinOriginalMargin(healed.DelayNS, 90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within 90 %% of original margin after sleeping 1/4 of the stress time: %v\n", ok)
}
