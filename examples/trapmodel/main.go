// trapmodel compares the two device models shipped with the library:
// the first-order closed-form TD model the paper fits to silicon, and
// the stochastic trap ensemble (capture/emission Monte-Carlo) that
// plays the silicon's role in this reproduction. Their trajectories
// agree in shape: logarithmic wearout, fast-then-slow partial recovery.
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func main() {
	ens, err := selfheal.NewTrapEnsemble(5000, 11)
	if err != nil {
		log.Fatal(err)
	}
	dev := selfheal.NewDevice()
	stress := selfheal.AcceleratedStress()
	sleep := selfheal.AcceleratedSleep()

	fmt.Println("hour    first-order ΔVth (mV)    trap-ensemble ΔVth (mV)   occupied traps")
	fmt.Println("---- stress: 24 h at 110 °C / 1.2 V (DC) ----")
	for h := 1; h <= 24; h++ {
		dev.Stress(stress, 1, 1)
		if err := ens.Stress(stress, 1, 1); err != nil {
			log.Fatal(err)
		}
		if h%3 == 0 {
			fmt.Printf("%4d %24.3f %26.3f %16d\n",
				h, dev.VthShiftV()*1000, ens.VthShiftV()*1000, ens.OccupiedTraps())
		}
	}
	devPeak, ensPeak := dev.VthShiftV(), ens.VthShiftV()

	fmt.Println("---- sleep: 6 h at 110 °C / −0.3 V ----")
	for h := 1; h <= 6; h++ {
		dev.Rejuvenate(sleep, 1)
		if err := ens.Rejuvenate(sleep, 1); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %24.3f %26.3f %16d\n",
			h+24, dev.VthShiftV()*1000, ens.VthShiftV()*1000, ens.OccupiedTraps())
	}

	devFrac := (devPeak - dev.VthShiftV()) / devPeak * 100
	ensFrac := (ensPeak - ens.VthShiftV()) / ensPeak * 100
	fmt.Printf("\nrecovered fraction: first-order %.1f %%, ensemble %.1f %%\n", devFrac, ensFrac)
	fmt.Printf("permanent residue (first-order): %.3f mV — ΔVth can never fully recover\n",
		dev.PermanentV()*1000)
}
