// dac14 regenerates the full evaluation of the DAC 2014 paper: the
// Table 1 schedule on five simulated chips, every figure and table,
// and the headline verdict — the complete EXPERIMENTS.md content.
package main

import (
	"flag"
	"fmt"
	"log"

	"selfheal"
)

func main() {
	seed := flag.Uint64("seed", 2014, "experiment seed")
	flag.Parse()

	report, err := selfheal.ReproducePaper(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render())
	fmt.Printf("\n%d artifacts regenerated (seed %d).\n", len(report.Artifacts), *seed)
}
