// scheduler compares the paper's Section 2.2 rejuvenation policies
// over a 60-day service life: no recovery (today's practice), reactive
// accelerated recovery (sleep when a degradation threshold trips) and
// proactive accelerated recovery (the circadian α = 4 schedule).
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func main() {
	const days = 60
	outs, err := selfheal.CompareSchedules(7, days,
		selfheal.NoRecoveryPolicy(),
		selfheal.ReactivePolicy(0.6, 0.3, selfheal.AcceleratedSleep()),
		selfheal.ProactivePolicy(4, 6, selfheal.AcceleratedSleep()),
		selfheal.ProactivePolicy(4, 6, selfheal.PassiveSleep()),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d days of hot operation (85 °C, 1.2 V), 1 h decision slots\n\n", days)
	fmt.Printf("%-28s %8s %8s %8s %8s %10s\n",
		"policy", "active%", "peak%", "final%", "mean%", "margin-use")
	for _, o := range outs {
		fmt.Printf("%-28s %7.1f%% %7.3f%% %7.3f%% %7.3f%% %9.1f%%\n",
			o.Policy, o.ActiveFraction*100, o.PeakPct, o.FinalPct, o.MeanPct, o.MarginProvisionPct)
	}
	fmt.Println("\nreading:")
	fmt.Println("  - no-recovery pays the full aging bill: its peak sets the margin a designer must ship;")
	fmt.Println("  - reactive sleeps rarely but runs aged (worse mean than proactive);")
	fmt.Println("  - proactive accelerated sleep keeps the chip refreshed at 80 % throughput;")
	fmt.Println("  - the same proactive schedule with passive gating recovers far less — the")
	fmt.Println("    sleep *conditions* (negative rail, heat), not sleep itself, do the healing.")
}
