// margin is the sign-off view of the whole paper: how much BTI delay
// guard band must a design ship for a target service life, and how much
// of it does the circadian rejuvenation schedule give back?
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func main() {
	baseline := selfheal.AlwaysOnMission()
	circadian := selfheal.CircadianMission()

	fmt.Printf("%-8s %22s %22s %12s\n", "years", "always-on margin (%)", "circadian margin (%)", "relaxed (%)")
	for _, years := range []float64{1, 3, 5, 10} {
		base, err := selfheal.RequiredMarginPct(baseline, years, 1.2)
		if err != nil {
			log.Fatal(err)
		}
		rej, err := selfheal.RequiredMarginPct(circadian, years, 1.2)
		if err != nil {
			log.Fatal(err)
		}
		relax, err := selfheal.MissionRelaxationPct(baseline, circadian, years)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %22.3f %22.3f %12.1f\n", years, base, rej, relax)
	}

	// Lifetime view: ship exactly the margin a 5-year always-on mission
	// needs and ask how long each mission actually lasts.
	fiveYear, err := selfheal.RequiredMarginPct(baseline, 5, 1)
	if err != nil {
		log.Fatal(err)
	}
	baseLife, err := selfheal.LifetimeYears(baseline, fiveYear*0.99)
	if err != nil {
		log.Fatal(err)
	}
	rejLife, err := selfheal.LifetimeYears(circadian, fiveYear*0.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshipping the 5-year always-on margin (%.3f %%):\n", fiveYear*0.99)
	fmt.Printf("  always-on lifetime:  %.1f years\n", baseLife)
	if selfheal.IsUnbounded(rejLife) {
		fmt.Printf("  circadian lifetime:  never exhausted (bounded envelope)\n")
	} else {
		fmt.Printf("  circadian lifetime:  %.1f years\n", rejLife)
	}
	fmt.Println("\nrejuvenation converts a wear-out budget into a steady-state one —")
	fmt.Println("the margin the paper says designers can stop shipping.")
}
