// adaptive runs the paper's Section 7 "virtual circadian rhythm" as a
// working controller: because the rejuvenation schedule is known in
// advance, the clock is re-timed every hour against the degradation
// envelope predicted by the first-order model — no silicon measurement
// in the loop — and still never violates timing.
package main

import (
	"fmt"
	"log"

	"selfheal"
)

func main() {
	const (
		days  = 30
		alpha = 4
		sleep = 6
	)
	for _, guard := range []float64{0.5, 1, 2} {
		out, err := selfheal.SimulateAdaptiveClock(9, days, alpha, sleep, guard,
			selfheal.AcceleratedSleep())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("guard %.1f %%: static period %.3f ns, adaptive mean %.3f ns, "+
			"speedup %.2f %%, violations %d/%d\n",
			guard, out.StaticPeriodNS, out.MeanAdaptivePeriodNS,
			out.MeanSpeedupPct, out.Violations, out.ActiveSlot)
	}
	fmt.Println("\nthe controller predicts from the model alone (schedule + fresh delay);")
	fmt.Println("knowing when the next deep rejuvenation comes converts bounded aging into clock speed.")
}
