package selfheal

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestNewChipValidation(t *testing.T) {
	if _, err := NewChip("", 1); err == nil {
		t.Error("empty id accepted")
	}
}

func TestChipLifecycle(t *testing.T) {
	chip, err := NewChip("demo", 7)
	if err != nil {
		t.Fatal(err)
	}
	if chip.ID() != "demo" {
		t.Errorf("ID = %q", chip.ID())
	}
	fresh, err := chip.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.DelayNS < 90 || fresh.DelayNS > 110 {
		t.Errorf("fresh delay = %v ns", fresh.DelayNS)
	}
	if math.Abs(fresh.DegradationPct) > 0.2 {
		t.Errorf("fresh degradation = %v %%", fresh.DegradationPct)
	}
	if fresh.Counts <= 0 || fresh.FrequencyHz <= 0 {
		t.Errorf("reading incomplete: %+v", fresh)
	}

	// Stress 24 h accelerated.
	trace, err := chip.Stress(AcceleratedStress(), 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 7 { // t=0 plus 6 four-hour samples
		t.Errorf("trace samples = %d", len(trace))
	}
	stressed, err := chip.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if stressed.DegradationPct < 1.5 {
		t.Errorf("stress degradation = %v %%", stressed.DegradationPct)
	}

	// Rejuvenate 6 h under the headline condition.
	if _, err := chip.Rejuvenate(AcceleratedSleep(), 6, 1); err != nil {
		t.Fatal(err)
	}
	healed, err := chip.Measure()
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := MarginRelaxedPct(chip.FreshDelayNS(), stressed.DelayNS, healed.DelayNS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(relaxed-72.4) > 5 {
		t.Errorf("margin relaxed = %.1f %%, want ≈72.4", relaxed)
	}
	ok, err := chip.WithinOriginalMargin(healed.DelayNS, 90)
	if err != nil || !ok {
		t.Errorf("healed chip not within 90%% of original margin: %v %v", ok, err)
	}
	rem, err := chip.RemainingMarginPct(healed.DelayNS)
	if err != nil || rem < 90 {
		t.Errorf("remaining margin = %v %%", rem)
	}
}

func TestChipDurationValidation(t *testing.T) {
	chip, err := NewChip("v", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chip.Stress(AcceleratedStress(), 0, 0); err == nil {
		t.Error("zero stress duration accepted")
	}
	if _, err := chip.Rejuvenate(AcceleratedSleep(), -1, 0); err == nil {
		t.Error("negative sleep duration accepted")
	}
}

func TestChipConditionValidation(t *testing.T) {
	chip, err := NewChip("v2", 1)
	if err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	cases := []struct {
		name string
		call func() error
	}{
		{"NaN stress hours", func() error { _, err := chip.Stress(AcceleratedStress(), nan, 0); return err }},
		{"NaN stress sampling", func() error { _, err := chip.Stress(AcceleratedStress(), 1, nan); return err }},
		{"NaN stress temperature", func() error {
			_, err := chip.Stress(StressCondition{TempC: nan, Vdd: 1.2}, 1, 0)
			return err
		}},
		{"Inf stress rail", func() error {
			_, err := chip.Stress(StressCondition{TempC: 110, Vdd: math.Inf(1)}, 1, 0)
			return err
		}},
		{"zero stress rail", func() error {
			_, err := chip.Stress(StressCondition{TempC: 110, Vdd: 0}, 1, 0)
			return err
		}},
		{"NaN sleep temperature", func() error {
			_, err := chip.Rejuvenate(SleepCondition{TempC: nan, Vdd: -0.3}, 1, 0)
			return err
		}},
		{"positive sleep rail", func() error {
			_, err := chip.Rejuvenate(SleepCondition{TempC: 110, Vdd: 1.2}, 1, 0)
			return err
		}},
		{"NaN sleep hours", func() error { _, err := chip.Rejuvenate(AcceleratedSleep(), nan, 0); return err }},
	}
	for _, tc := range cases {
		if err := tc.call(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// The rejected calls must not have perturbed the die.
	if trace, err := chip.Stress(AcceleratedStress(), 1, 0); err != nil || len(trace) == 0 {
		t.Fatalf("valid stress after rejections: trace %d points, err %v", len(trace), err)
	}
}

func TestCompareSchedulesValidation(t *testing.T) {
	cases := []struct {
		name    string
		horizon float64
		policy  Policy
	}{
		{"zero alpha", 1, ProactivePolicy(0, 6, AcceleratedSleep())},
		{"NaN alpha", 1, ProactivePolicy(math.NaN(), 6, AcceleratedSleep())},
		{"zero sleep length", 1, ProactivePolicy(4, 0, AcceleratedSleep())},
		{"NaN sleep temperature", 1, ProactivePolicy(4, 6, SleepCondition{TempC: math.NaN(), Vdd: -0.3})},
		{"positive sleep rail", 1, ProactivePolicy(4, 6, SleepCondition{TempC: 110, Vdd: 0.5})},
		{"inverted hysteresis", 1, ReactivePolicy(0.25, 0.5, AcceleratedSleep())},
		{"NaN trigger", 1, ReactivePolicy(math.NaN(), 0.25, AcceleratedSleep())},
		{"NaN horizon", math.NaN(), NoRecoveryPolicy()},
		{"negative horizon", -1, NoRecoveryPolicy()},
	}
	for _, tc := range cases {
		if _, err := CompareSchedules(1, tc.horizon, tc.policy); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestMonitoredChipConditionValidation(t *testing.T) {
	chip, err := NewMonitoredChip("v3", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Stress(StressCondition{TempC: math.NaN(), Vdd: 1.2}, 1); err == nil {
		t.Error("NaN stress temperature accepted")
	}
	if err := chip.Rejuvenate(SleepCondition{TempC: 110, Vdd: math.Inf(-1)}, 1); err == nil {
		t.Error("-Inf sleep rail accepted")
	}
}

func TestRunMulticoreContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMulticoreContext(ctx, CircadianScheduler, 6, 30); err == nil {
		t.Error("cancelled context accepted")
	}
	if _, err := RunMulticore(CircadianScheduler, 6, math.NaN()); err == nil {
		t.Error("NaN days accepted")
	}
}

func TestChipDeterministicReplay(t *testing.T) {
	run := func() float64 {
		chip, err := NewChip("r", 99)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := chip.Stress(AcceleratedStress(), 6, 0); err != nil {
			t.Fatal(err)
		}
		m, err := chip.Measure()
		if err != nil {
			t.Fatal(err)
		}
		return m.DelayNS
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay differs: %v vs %v", a, b)
	}
}

func TestChipAgingDropsLeakage(t *testing.T) {
	chip, err := NewChip("lk", 3)
	if err != nil {
		t.Fatal(err)
	}
	before := chip.LeakageNA()
	if _, err := chip.Stress(AcceleratedStress(), 24, 0); err != nil {
		t.Fatal(err)
	}
	if after := chip.LeakageNA(); after >= before {
		t.Errorf("leakage did not drop: %v -> %v", before, after)
	}
	if chip.MeanVthShiftV() <= 0 {
		t.Error("no mean Vth shift recorded")
	}
}

func TestModelClosedForms(t *testing.T) {
	// Stress grows with time, temperature, voltage.
	base := StressShiftV(AcceleratedStress(), 1, 24)
	if base <= 0 {
		t.Fatal("no stress shift")
	}
	if StressShiftV(AcceleratedStress(), 1, 48) <= base {
		t.Error("shift not increasing in time")
	}
	cooler := AcceleratedStress()
	cooler.TempC = 100
	if StressShiftV(cooler, 1, 24) >= base {
		t.Error("shift not increasing in temperature")
	}
	// Recovery fractions reproduce the paper's ordering and headline.
	conds := []SleepCondition{PassiveSleep(), NegativeVoltageSleep(), HotSleep(), AcceleratedSleep()}
	prev := 0.0
	for i, c := range conds {
		r := RecoveredFraction(c, 24, 6)
		if r <= prev {
			t.Errorf("condition %d fraction %v not above previous %v", i, r, prev)
		}
		prev = r
	}
	// Combined condition recovered fraction of recoverable ≈ 0.787
	// (total 72.4 % after the 8 % permanent part).
	if r := RecoveredFraction(AcceleratedSleep(), 24, 6); math.Abs(r-0.787) > 0.02 {
		t.Errorf("accelerated fraction = %v", r)
	}
}

func TestDeviceFacade(t *testing.T) {
	d := NewDevice()
	d.Stress(AcceleratedStress(), 1, 24)
	v1 := d.VthShiftV()
	if v1 <= 0 || d.PermanentV() <= 0 {
		t.Fatalf("device did not age: %v / %v", v1, d.PermanentV())
	}
	d.Rejuvenate(AcceleratedSleep(), 6)
	if frac := (v1 - d.VthShiftV()) / v1; math.Abs(frac-0.724) > 0.01 {
		t.Errorf("device recovered fraction = %v, want ≈0.724", frac)
	}
}

func TestTrapEnsembleFacade(t *testing.T) {
	e, err := NewTrapEnsemble(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Traps() != 2000 || e.OccupiedTraps() != 0 {
		t.Fatalf("fresh ensemble: %d traps, %d occupied", e.Traps(), e.OccupiedTraps())
	}
	if err := e.Stress(AcceleratedStress(), 1, 24); err != nil {
		t.Fatal(err)
	}
	v1 := e.VthShiftV()
	if v1 <= 0 {
		t.Fatal("ensemble did not age")
	}
	if err := e.Rejuvenate(AcceleratedSleep(), 6); err != nil {
		t.Fatal(err)
	}
	if e.VthShiftV() >= v1 {
		t.Error("ensemble did not recover")
	}
	if err := e.Stress(AcceleratedStress(), 1, -1); err == nil {
		t.Error("negative duration accepted")
	}
	if err := e.Rejuvenate(AcceleratedSleep(), -1); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := NewTrapEnsemble(0, 1); err == nil {
		t.Error("empty ensemble accepted")
	}
}

func TestCompareSchedulesFacade(t *testing.T) {
	outs, err := CompareSchedules(11, 5,
		NoRecoveryPolicy(),
		ProactivePolicy(4, 6, AcceleratedSleep()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	if outs[1].FinalPct >= outs[0].FinalPct {
		t.Errorf("proactive %v not below baseline %v", outs[1].FinalPct, outs[0].FinalPct)
	}
	if len(outs[0].Trace) == 0 {
		t.Error("empty trace")
	}
	// Zero-valued policy rejected.
	if _, err := CompareSchedules(1, 5, Policy{}); err == nil {
		t.Error("zero policy accepted")
	}
	// Reactive constructor works through the facade.
	if _, err := CompareSchedules(1, 2, ReactivePolicy(1.0, 0.5, AcceleratedSleep())); err != nil {
		t.Errorf("reactive policy failed: %v", err)
	}
}

func TestRunMulticoreFacade(t *testing.T) {
	ci, err := RunMulticore(CircadianScheduler, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunMulticore(StaticScheduler, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ci.WorstPct >= st.WorstPct {
		t.Errorf("circadian worst %v not below static %v", ci.WorstPct, st.WorstPct)
	}
	if len(ci.PerCorePct) != 8 || len(ci.TemperatureC) != 8 {
		t.Error("outcome maps incomplete")
	}
	if ci.CoreSlots != st.CoreSlots {
		t.Error("throughput not held equal")
	}
	if _, err := RunMulticore("bogus", 6, 10); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := RunMulticore(StaticScheduler, 6, 0); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := RunMulticore(StaticScheduler, 99, 10); err == nil {
		t.Error("absurd demand accepted")
	}
}

func TestMonitoredChip(t *testing.T) {
	chip, err := NewMonitoredChip("mon", 5)
	if err != nil {
		t.Fatal(err)
	}
	if chip.ID() != "mon" {
		t.Errorf("ID = %q", chip.ID())
	}
	fresh, err := chip.Read()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh.DegradationPPM) > 10 {
		t.Errorf("fresh reading = %v ppm", fresh.DegradationPPM)
	}
	if err := chip.Stress(AcceleratedStress(), 12); err != nil {
		t.Fatal(err)
	}
	stressed, err := chip.Read()
	if err != nil {
		t.Fatal(err)
	}
	if stressed.DegradationPPM < 1000 {
		t.Errorf("stressed reading = %v ppm, want thousands", stressed.DegradationPPM)
	}
	if err := chip.Rejuvenate(AcceleratedSleep(), 3); err != nil {
		t.Fatal(err)
	}
	healed, err := chip.Read()
	if err != nil {
		t.Fatal(err)
	}
	if healed.DegradationPPM >= stressed.DegradationPPM {
		t.Errorf("no healing visible: %v -> %v ppm", stressed.DegradationPPM, healed.DegradationPPM)
	}
	// Validation.
	if _, err := NewMonitoredChip("", 1); err == nil {
		t.Error("empty id accepted")
	}
	if err := chip.Stress(AcceleratedStress(), 0); err == nil {
		t.Error("zero stress duration accepted")
	}
	if err := chip.Stress(StressCondition{TempC: 110, Vdd: 0}, 1); err == nil {
		t.Error("zero stress rail accepted")
	}
	if err := chip.Rejuvenate(AcceleratedSleep(), -1); err == nil {
		t.Error("negative sleep duration accepted")
	}
	if err := chip.Rejuvenate(SleepCondition{TempC: 20, Vdd: 1.2}, 1); err == nil {
		t.Error("positive sleep rail accepted")
	}
}

func TestAdderLogicFacade(t *testing.T) {
	adder, err := NewAdderLogic(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if adder.Bits() != 8 {
		t.Errorf("Bits = %d", adder.Bits())
	}
	// Arithmetic through the fabric.
	sum, cout, err := adder.Add(200, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 301&0xff || !cout {
		t.Errorf("200+100+1 = %d cout %v", sum, cout)
	}
	if _, _, err := adder.Add(256, 0, false); err == nil {
		t.Error("oversized operand accepted")
	}
	fresh := adder.FreshCriticalPathNS()
	if fresh <= 0 {
		t.Fatal("no fresh critical path")
	}
	// Idle workload ages the path; arithmetic survives; sleep heals.
	if err := adder.StressWithWorkload(AcceleratedStress(), 24, 0); err != nil {
		t.Fatal(err)
	}
	aged, err := adder.CriticalPathNS()
	if err != nil {
		t.Fatal(err)
	}
	if aged <= fresh {
		t.Fatal("no aging")
	}
	if sum, _, err := adder.Add(17, 25, false); err != nil || sum != 42 {
		t.Errorf("aged adder broke: %d, %v", sum, err)
	}
	if err := adder.Rejuvenate(AcceleratedSleep(), 6); err != nil {
		t.Fatal(err)
	}
	healed, err := adder.CriticalPathNS()
	if err != nil {
		t.Fatal(err)
	}
	if healed >= aged || healed < fresh {
		t.Errorf("healing wrong: fresh %v aged %v healed %v", fresh, aged, healed)
	}
	// Validation.
	if _, err := NewAdderLogic(0, 1); err == nil {
		t.Error("zero-width adder accepted")
	}
	if _, err := NewAdderLogic(99, 1); err == nil {
		t.Error("huge adder accepted")
	}
	if err := adder.StressWithWorkload(AcceleratedStress(), 0, 0.5); err == nil {
		t.Error("zero duration accepted")
	}
	if err := adder.StressWithWorkload(AcceleratedStress(), 1, 2); err == nil {
		t.Error("bias > 1 accepted")
	}
	if err := adder.Rejuvenate(SleepCondition{TempC: 20, Vdd: 1}, 1); err == nil {
		t.Error("positive sleep rail accepted")
	}
	if err := adder.Rejuvenate(AcceleratedSleep(), -1); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestRunCacheSRAMFacade(t *testing.T) {
	none, err := RunCacheSRAM(SRAMNone, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunCacheSRAM(SRAMFlipAndRecover, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if both.MinSNMMV <= none.MinSNMMV {
		t.Errorf("maintenance did not help: %v vs %v", both.MinSNMMV, none.MinSNMMV)
	}
	if none.MarginConsumedPct <= both.MarginConsumedPct {
		t.Error("margin accounting inverted")
	}
	if _, err := RunCacheSRAM("bogus", 30, 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := RunCacheSRAM(SRAMNone, 0, 1); err == nil {
		t.Error("zero days accepted")
	}
}

func TestMissionMarginFacade(t *testing.T) {
	base, err := RequiredMarginPct(AlwaysOnMission(), 10, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	rej, err := RequiredMarginPct(CircadianMission(), 10, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if rej >= base {
		t.Errorf("circadian margin %v not below always-on %v", rej, base)
	}
	relax, err := MissionRelaxationPct(AlwaysOnMission(), CircadianMission(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if relax < 30 {
		t.Errorf("relaxation = %v %%", relax)
	}
	// Lifetime at the 5-year baseline margin: circadian unbounded.
	fiveYear, err := RequiredMarginPct(AlwaysOnMission(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	life, err := LifetimeYears(CircadianMission(), fiveYear*0.99)
	if err != nil {
		t.Fatal(err)
	}
	baseLife, err := LifetimeYears(AlwaysOnMission(), fiveYear*0.99)
	if err != nil {
		t.Fatal(err)
	}
	if IsUnbounded(baseLife) || baseLife > 5.1 {
		t.Errorf("baseline lifetime = %v", baseLife)
	}
	if !IsUnbounded(life) && life < 2*baseLife {
		t.Errorf("circadian lifetime %v not a clear extension of %v", life, baseLife)
	}
	// Validation propagates.
	bad := AlwaysOnMission()
	bad.ActiveVdd = 0
	if _, err := RequiredMarginPct(bad, 10, 1.2); err == nil {
		t.Error("bad mission accepted")
	}
	if _, err := LifetimeYears(AlwaysOnMission(), 0); err == nil {
		t.Error("zero margin accepted")
	}
	if _, err := MissionRelaxationPct(bad, CircadianMission(), 1); err == nil {
		t.Error("bad baseline accepted")
	}
}

func TestReproduceExtensions(t *testing.T) {
	report, err := ReproduceExtensions(2014)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"Extension E1", "Extension E2", "Extension E3",
		"Extension E4", "Extension E5", "Extension E6", "Extension E7", "Extension E8",
		"Extension E9", "Extension E10", "Extension E11", "Extension E12"}
	if len(report.Artifacts) != len(wantIDs) {
		t.Fatalf("artifact count = %d", len(report.Artifacts))
	}
	for i, id := range wantIDs {
		if report.Artifacts[i].ID != id {
			t.Errorf("artifact %d = %q, want %q", i, report.Artifacts[i].ID, id)
		}
	}
	text := report.Render()
	if !strings.Contains(text, "GNOMO") || !strings.Contains(text, "LUT6") {
		t.Error("extension report incomplete")
	}
}

func TestPUFChipFacade(t *testing.T) {
	chip, err := NewPUFChip("p", 17)
	if err != nil {
		t.Fatal(err)
	}
	if chip.Bits() != 16 {
		t.Errorf("bits = %d", chip.Bits())
	}
	if flips, err := chip.FlippedBits(); err != nil || flips != 0 {
		t.Errorf("fresh flips = %d, %v", flips, err)
	}
	if err := chip.Stress(AcceleratedStress(), 48); err != nil {
		t.Fatal(err)
	}
	aged, err := chip.FlippedBits()
	if err != nil || aged == 0 {
		t.Fatalf("no drift after stress: %d, %v", aged, err)
	}
	if err := chip.Rejuvenate(AcceleratedSleep(), 12); err != nil {
		t.Fatal(err)
	}
	healed, err := chip.FlippedBits()
	if err != nil || healed >= aged {
		t.Errorf("no healing: %d -> %d, %v", aged, healed, err)
	}
	rel, err := chip.Reliability(10)
	if err != nil || rel <= 0 {
		t.Errorf("reliability = %v, %v", rel, err)
	}
	resp, err := chip.Read()
	if err != nil || len(resp) != 16 {
		t.Errorf("read = %v, %v", resp, err)
	}
	// Validation.
	if _, err := NewPUFChip("", 1); err == nil {
		t.Error("empty id accepted")
	}
	if err := chip.Stress(AcceleratedStress(), 0); err == nil {
		t.Error("zero duration accepted")
	}
	if err := chip.Rejuvenate(SleepCondition{Vdd: 1}, 1); err == nil {
		t.Error("positive sleep rail accepted")
	}
	if _, err := chip.Reliability(0); err == nil {
		t.Error("zero reads accepted")
	}
}

func TestSimulateAdaptiveClockFacade(t *testing.T) {
	out, err := SimulateAdaptiveClock(9, 10, 4, 6, 1, AcceleratedSleep())
	if err != nil {
		t.Fatal(err)
	}
	if out.Violations != 0 {
		t.Errorf("violations = %d", out.Violations)
	}
	if out.MeanSpeedupPct <= 0 {
		t.Errorf("speedup = %v", out.MeanSpeedupPct)
	}
	if out.ActiveSlot == 0 {
		t.Error("no active slots")
	}
	if _, err := SimulateAdaptiveClock(9, 10, 0, 6, 1, AcceleratedSleep()); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := SimulateAdaptiveClock(9, 10, 4, 6, -1, AcceleratedSleep()); err == nil {
		t.Error("negative guard accepted")
	}
}

func TestExportMeasurementsFacade(t *testing.T) {
	dir := t.TempDir()
	names, err := ExportMeasurements(3, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 11 {
		t.Errorf("wrote %d files", len(names))
	}
}

func TestReproducePaper(t *testing.T) {
	report, err := ReproducePaper(2014)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{
		"Figure 1", "Table 1", "Figure 4", "Figure 5", "Table 2", "Table 3",
		"Figure 6a", "Figure 6b", "Figure 7a", "Figure 7b", "Figure 8",
		"Table 4", "Table 5", "Figure 9", "Figure 10", "Headline",
	}
	if len(report.Artifacts) != len(wantIDs) {
		t.Fatalf("artifact count = %d, want %d", len(report.Artifacts), len(wantIDs))
	}
	for i, id := range wantIDs {
		if report.Artifacts[i].ID != id {
			t.Errorf("artifact %d = %q, want %q", i, report.Artifacts[i].ID, id)
		}
	}
	if _, ok := report.Find("Table 4"); !ok {
		t.Error("Find failed")
	}
	if _, ok := report.Find("Table 99"); ok {
		t.Error("Find invented an artifact")
	}
	text := report.Render()
	if !strings.Contains(text, "HEADLINE HOLDS") {
		t.Error("headline verdict missing from the report")
	}
	if !strings.Contains(text, "AR110N6") || !strings.Contains(text, "circadian") {
		t.Error("report incomplete")
	}
}

// TestReproducePaperDeterministic: the same seed regenerates the whole
// evaluation byte-for-byte — figures, tables, noise, everything.
func TestReproducePaperDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full schedule twice")
	}
	a, err := ReproducePaper(77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReproducePaper(77)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("same seed produced different reports")
	}
	c, err := ReproducePaper(78)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() == c.Render() {
		t.Error("different seeds produced identical reports")
	}
}
