package selfheal

import (
	"errors"
	"fmt"

	"selfheal/internal/rng"
	"selfheal/internal/td"
	"selfheal/internal/units"
)

// StressShiftV evaluates the closed-form TD wearout model (paper
// Eqs. 1–2): the threshold-voltage shift in volts after stressing a
// fresh device for the given hours under the condition. duty is the
// switching duty cycle (1 = DC stress).
func StressShiftV(cond StressCondition, duty, hours float64) float64 {
	return td.StressShift(td.DefaultParams(), td.StressCond{
		V:    units.Volt(cond.Vdd),
		T:    units.Celsius(cond.TempC).Kelvin(),
		Duty: duty,
	}, units.HoursToSeconds(hours))
}

// RecoveredFraction evaluates the closed-form TD recovery model (paper
// Eqs. 3–4): the fraction of the recoverable shift removed after
// sleepHours under the condition, following stressHours of accumulated
// stress.
func RecoveredFraction(cond SleepCondition, stressHours, sleepHours float64) float64 {
	var vrev units.Volt
	if cond.Vdd < 0 {
		vrev = units.Volt(-cond.Vdd)
	}
	return td.RecoveredFraction(td.DefaultParams(), td.RecoveryCond{
		VRev: vrev,
		T:    units.Celsius(cond.TempC).Kelvin(),
	}, units.HoursToSeconds(stressHours), units.HoursToSeconds(sleepHours))
}

// Device is a single transistor-level aging state under the TD model —
// the building block everything else integrates. The zero value is not
// usable; create with NewDevice.
type Device struct {
	params td.Params
	state  td.State
}

// NewDevice returns a fresh device under the calibrated 40 nm model.
func NewDevice() *Device {
	return &Device{params: td.DefaultParams()}
}

// VthShiftV returns the present total threshold shift in volts.
func (d *Device) VthShiftV() float64 { return d.state.Vth() }

// PermanentV returns the irreversible component in volts.
func (d *Device) PermanentV() float64 { return d.state.Permanent() }

// Stress ages the device for hours under the condition at the given
// switching duty (1 = DC).
func (d *Device) Stress(cond StressCondition, duty, hours float64) {
	d.state.Stress(d.params, td.StressCond{
		V:    units.Volt(cond.Vdd),
		T:    units.Celsius(cond.TempC).Kelvin(),
		Duty: duty,
	}, units.HoursToSeconds(hours))
}

// Rejuvenate heals the device for hours under the sleep condition.
func (d *Device) Rejuvenate(cond SleepCondition, hours float64) {
	var vrev units.Volt
	if cond.Vdd < 0 {
		vrev = units.Volt(-cond.Vdd)
	}
	d.state.Recover(d.params, td.RecoveryCond{
		VRev: vrev,
		T:    units.Celsius(cond.TempC).Kelvin(),
	}, units.HoursToSeconds(hours))
}

// TrapEnsemble is the stochastic trapping/detrapping ground-truth
// model (Velamala et al., DAC'12): a Monte-Carlo population of traps
// with log-uniform capture/emission time constants. The first-order
// closed forms above are validated against it.
type TrapEnsemble struct {
	ens *td.Ensemble
}

// NewTrapEnsemble draws n traps deterministically from the seed.
func NewTrapEnsemble(n int, seed uint64) (*TrapEnsemble, error) {
	e, err := td.NewEnsemble(n, td.DefaultEnsembleParams(), rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("selfheal: %w", err)
	}
	return &TrapEnsemble{ens: e}, nil
}

// VthShiftV returns the ensemble's present threshold shift in volts.
func (e *TrapEnsemble) VthShiftV() float64 { return e.ens.DeltaVth() }

// OccupiedTraps returns how many traps currently hold a carrier.
func (e *TrapEnsemble) OccupiedTraps() int { return e.ens.Occupied() }

// Traps returns the population size.
func (e *TrapEnsemble) Traps() int { return e.ens.Len() }

// Stress ages the ensemble for hours under the condition.
func (e *TrapEnsemble) Stress(cond StressCondition, duty, hours float64) error {
	if hours < 0 {
		return errors.New("selfheal: negative duration")
	}
	e.ens.Stress(td.StressCond{
		V:    units.Volt(cond.Vdd),
		T:    units.Celsius(cond.TempC).Kelvin(),
		Duty: duty,
	}, units.HoursToSeconds(hours))
	return nil
}

// Rejuvenate heals the ensemble for hours under the sleep condition.
func (e *TrapEnsemble) Rejuvenate(cond SleepCondition, hours float64) error {
	if hours < 0 {
		return errors.New("selfheal: negative duration")
	}
	var vrev units.Volt
	if cond.Vdd < 0 {
		vrev = units.Volt(-cond.Vdd)
	}
	e.ens.Recover(td.RecoveryCond{
		VRev: vrev,
		T:    units.Celsius(cond.TempC).Kelvin(),
	}, units.HoursToSeconds(hours))
	return nil
}
