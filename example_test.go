package selfheal_test

import (
	"fmt"
	"log"

	"selfheal"
)

// The canonical flow: fabricate a chip, wear it out for a day under the
// paper's accelerated condition, rejuvenate it for a quarter of the
// stress time, and account for the margin.
func Example() {
	chip, err := selfheal.NewChip("example", 42)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := chip.Stress(selfheal.AcceleratedStress(), 24, 0); err != nil {
		log.Fatal(err)
	}
	stressed, err := chip.Measure()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := chip.Rejuvenate(selfheal.AcceleratedSleep(), 6, 0); err != nil {
		log.Fatal(err)
	}
	healed, err := chip.Measure()
	if err != nil {
		log.Fatal(err)
	}
	relaxed, err := selfheal.MarginRelaxedPct(chip.FreshDelayNS(), stressed.DelayNS, healed.DelayNS)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := chip.WithinOriginalMargin(healed.DelayNS, 90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("margin relaxed ≈ %.0f %%, within 90 %% of original margin: %v\n",
		relaxed, ok)
	// Output:
	// margin relaxed ≈ 72 %, within 90 % of original margin: true
}

// The closed-form device model is available directly: the recovered
// fraction after the paper's 24 h stress / 6 h sleep under each
// condition.
func ExampleRecoveredFraction() {
	conds := []struct {
		name string
		c    selfheal.SleepCondition
	}{
		{"passive gating   ", selfheal.PassiveSleep()},
		{"negative voltage ", selfheal.NegativeVoltageSleep()},
		{"high temperature ", selfheal.HotSleep()},
		{"combined         ", selfheal.AcceleratedSleep()},
	}
	for _, c := range conds {
		fmt.Printf("%s %.2f\n", c.name, selfheal.RecoveredFraction(c.c, 24, 6))
	}
	// Output:
	// passive gating    0.39
	// negative voltage  0.51
	// high temperature  0.61
	// combined          0.79
}

// Schedules compare over a service life: the paper's proactive α = 4
// circadian rhythm against never recovering.
func ExampleCompareSchedules() {
	outs, err := selfheal.CompareSchedules(11, 5,
		selfheal.NoRecoveryPolicy(),
		selfheal.ProactivePolicy(4, 6, selfheal.AcceleratedSleep()),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline final degradation is %.1f× the rejuvenated chip's\n",
		outs[0].FinalPct/outs[1].FinalPct)
	// Output:
	// baseline final degradation is 4.3× the rejuvenated chip's
}
